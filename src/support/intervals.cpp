#include "support/intervals.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace slimsim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

bool Interval::unbounded() const { return std::isinf(hi); }

double Interval::length() const { return unbounded() ? kInf : hi - lo; }

void IntervalParts::grow(std::uint32_t cap) {
    auto* data = new Interval[cap];
    std::memcpy(data, data_, size_ * sizeof(Interval));
    release();
    data_ = data;
    cap_ = cap;
}

IntervalSet::IntervalSet(double lo, double hi) {
    SLIMSIM_ASSERT(lo <= hi);
    parts_.push_back({lo, hi});
}

IntervalSet::IntervalSet(std::vector<Interval> intervals) {
    for (const auto& iv : intervals) SLIMSIM_ASSERT(iv.lo <= iv.hi);
    parts_.append(intervals.data(), intervals.size());
    normalize();
}

IntervalSet IntervalSet::all() { return {0.0, kInf}; }

void IntervalSet::normalize() {
    if (parts_.empty()) return;
    std::sort(parts_.begin(), parts_.end(),
              [](const Interval& a, const Interval& b) {
                  return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
              });
    // In-place merge of overlapping/adjacent parts (the input is sorted, so
    // the write cursor never overtakes the read cursor).
    std::size_t out = 0;
    for (std::size_t i = 1; i < parts_.size(); ++i) {
        if (parts_[i].lo <= parts_[out].hi) {
            parts_[out].hi = std::max(parts_[out].hi, parts_[i].hi);
        } else {
            parts_[++out] = parts_[i];
        }
    }
    parts_.truncate(out + 1);
}

bool IntervalSet::contains(double t) const {
    // Binary search over sorted disjoint parts.
    auto it = std::upper_bound(parts_.begin(), parts_.end(), t,
                               [](double v, const Interval& iv) { return v < iv.lo; });
    if (it == parts_.begin()) return false;
    return std::prev(it)->contains(t);
}

double IntervalSet::measure() const {
    double total = 0.0;
    for (const auto& iv : parts_) {
        if (iv.unbounded()) return kInf;
        total += iv.length();
    }
    return total;
}

std::optional<double> IntervalSet::earliest() const {
    if (parts_.empty()) return std::nullopt;
    return parts_.front().lo;
}

std::optional<double> IntervalSet::latest() const {
    if (parts_.empty() || parts_.back().unbounded()) return std::nullopt;
    return parts_.back().hi;
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
    IntervalSet out;
    out.parts_.append(parts_.begin(), parts_.size());
    out.parts_.append(other.parts_.begin(), other.parts_.size());
    out.normalize();
    return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
    IntervalSet out;
    // Two-pointer sweep over the sorted parts of both sets; the result is
    // already sorted and disjoint, so no normalization pass is needed.
    std::size_t i = 0, j = 0;
    while (i < parts_.size() && j < other.parts_.size()) {
        const Interval& a = parts_[i];
        const Interval& b = other.parts_[j];
        const double lo = std::max(a.lo, b.lo);
        const double hi = std::min(a.hi, b.hi);
        if (lo <= hi) out.parts_.push_back({lo, hi});
        if (a.hi < b.hi) {
            ++i;
        } else {
            ++j;
        }
    }
    return out;
}

IntervalSet IntervalSet::complement(double bound) const {
    // Closed-set complement of a closed set is open; we return its closure,
    // consistent with the closed over-approximation documented in the header.
    IntervalSet out;
    double cursor = 0.0;
    for (const auto& iv : parts_) {
        if (iv.lo > bound) break;
        if (iv.lo > cursor) out.parts_.push_back({cursor, std::min(iv.lo, bound)});
        cursor = std::max(cursor, iv.hi);
        if (cursor >= bound) break;
    }
    if (cursor < bound) out.parts_.push_back({cursor, bound});
    return out;
}

IntervalSet IntervalSet::clamp(double lo, double hi) const {
    SLIMSIM_ASSERT(lo <= hi);
    return intersect(IntervalSet(lo, hi));
}

std::optional<double> IntervalSet::prefix_horizon() const {
    if (parts_.empty() || parts_.front().lo > 0.0) return std::nullopt;
    return parts_.front().hi;
}

double IntervalSet::sample_uniform(Rng& rng) const {
    SLIMSIM_ASSERT(!parts_.empty());
    const double total = measure();
    SLIMSIM_ASSERT(std::isfinite(total));
    if (total == 0.0) {
        // Pure point set: uniform among the points.
        return parts_[rng.uniform_index(parts_.size())].lo;
    }
    double r = rng.uniform01() * total;
    for (const auto& iv : parts_) {
        const double len = iv.length();
        if (r <= len) return std::min(iv.lo + r, iv.hi);
        r -= len;
    }
    return parts_.back().hi; // numeric slack fallback
}

std::string IntervalSet::to_string() const {
    if (parts_.empty()) return "{}";
    std::ostringstream os;
    bool first = true;
    for (const auto& iv : parts_) {
        if (!first) os << " u ";
        first = false;
        os << '[' << iv.lo << ", ";
        if (iv.unbounded()) {
            os << "inf)";
        } else {
            os << iv.hi << ']';
        }
    }
    return os.str();
}

} // namespace slimsim
