// Shared non-cryptographic hashing: murmur3 finalization and streaming
// combining.
//
// Used for hash-consing keys (expr/compile, eda/compiled), discrete-state
// interning (eda/state) and compiled-model content hashes. All functions are
// deterministic across processes and platforms (no pointer or ASLR input),
// which the checkpoint/resume model-hash check relies on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace slimsim {

/// Murmur3's 64-bit finalizer (fmix64): a full-avalanche bijection, so keys
/// differing only in low bits spread over the whole output range.
[[nodiscard]] constexpr std::uint64_t murmur3_fmix64(std::uint64_t k) {
    k ^= k >> 33;
    k *= 0xFF51AFD7ED558CCDULL;
    k ^= k >> 33;
    k *= 0xC4CEB9FE1A85EC53ULL;
    k ^= k >> 33;
    return k;
}

/// Streaming combiner: mixes one word into a running hash with murmur3
/// finalization per step (stronger than the boost-style xor-shift combine).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t seed, std::uint64_t v) {
    return murmur3_fmix64(seed ^ (murmur3_fmix64(v) + 0x9E3779B97F4A7C15ULL +
                                  (seed << 6) + (seed >> 2)));
}

/// Hash of a word span (murmur3-finalized per word; order-sensitive).
[[nodiscard]] inline std::uint64_t hash_words(const std::uint64_t* words,
                                              std::size_t count,
                                              std::uint64_t seed = 0x5EED5EED5EED5EEDULL) {
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < count; ++i) h = hash_mix(h, words[i]);
    return hash_mix(h, count);
}

/// The raw bit pattern of a double as a hashable word (distinguishes +0/-0
/// and every NaN payload; exact, unlike hashing the numeric value).
[[nodiscard]] inline std::uint64_t double_bits(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

} // namespace slimsim
