// Path properties checked by the simulator.
//
// The paper's tool checks timed reachability P( <> [0,u] goal ); its future
// work section asks for a fuller CSL fragment. We support three time-bounded
// path formulas (all with exact continuous-time monitoring along paths,
// including goals over clocks/continuous variables):
//   Reach:    <> [lo,hi] goal            (lo = 0 gives the paper's property)
//   Until:    hold U [lo,hi] goal
//   Globally: [] [0,hi] goal
#pragma once

#include <string_view>

#include "slim/instantiate.hpp"

namespace slimsim::sim {

enum class FormulaKind : std::uint8_t { Reach, Until, Globally };

[[nodiscard]] std::string to_string(FormulaKind k);

/// A time-bounded path formula; expressions are resolved with identity
/// bindings (slot == VarId).
struct PathFormula {
    FormulaKind kind = FormulaKind::Reach;
    expr::ExprPtr hold; // Until: the left-hand side; null otherwise
    expr::ExprPtr goal; // Reach/Until target; Globally: the invariant
    double lo = 0.0;    // lower time bound (Reach/Until)
    double bound = 0.0; // upper time bound
    std::string text;   // original spelling, for reports
};

/// The paper's property type: P( <> [0,u] goal ).
using TimedReachability = PathFormula;

/// P( <> [0,bound] goal ). Throws slimsim::Error on unknown names, type
/// errors or a non-positive bound.
[[nodiscard]] TimedReachability make_reachability(const slim::InstanceModel& model,
                                                  std::string_view goal_source,
                                                  double bound);

/// P( <> [lo,hi] goal ) with 0 <= lo <= hi.
[[nodiscard]] PathFormula make_reachability_interval(const slim::InstanceModel& model,
                                                     std::string_view goal_source,
                                                     double lo, double hi);

/// P( hold U [lo,hi] goal ).
[[nodiscard]] PathFormula make_until(const slim::InstanceModel& model,
                                     std::string_view hold_source,
                                     std::string_view goal_source, double lo, double hi);

/// P( [] [0,bound] goal ).
[[nodiscard]] PathFormula make_globally(const slim::InstanceModel& model,
                                        std::string_view goal_source, double bound);

/// Resolves an already-parsed Boolean expression against the model's global
/// variable table (identity bindings).
[[nodiscard]] expr::ExprPtr resolve_goal(const slim::InstanceModel& model,
                                         expr::ExprPtr goal);

} // namespace slimsim::sim
