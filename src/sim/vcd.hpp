// VCD (Value Change Dump) export of simulated paths.
//
// Writes one simulated path as an IEEE-1364 VCD waveform so the evolution of
// the model's data elements and process locations can be inspected in any
// waveform viewer (GTKWave etc.) — the batch-friendly counterpart of the
// paper's interactive GUI inspection (Fig. 1).
//
// Booleans map to 1-bit wires, integers to 64-bit registers, reals/clocks/
// continuous variables to VCD `real` signals sampled at every discrete event
// (VCD has no native piecewise-linear encoding; between events a linear ramp
// is implied by the model semantics). Process locations are emitted as
// integer signals (the location index).
#pragma once

#include <iosfwd>

#include "sim/path_generator.hpp"

namespace slimsim::sim {

struct VcdOptions {
    /// Timescale of one VCD tick in seconds (default: 1 ms resolution).
    double tick_seconds = 1e-3;
};

/// Runs one path with the given generator/RNG and streams it as VCD.
/// Returns the path outcome.
PathOutcome write_vcd(const PathGenerator& gen, Rng& rng, std::ostream& out,
                      const VcdOptions& options = {});

} // namespace slimsim::sim
