// Model coverage, occupancy & decision profiling.
//
// When coverage is requested, each worker owns one CoverageShard that
// records a sparse per-path delta over the instantiated network's elements
// (eda::ElementIndex): mode entry counts, sojourn-time-weighted time-in-mode
// occupancy (model time, so the numbers are deterministic), transition fire
// counts (error-model transitions double as error-event activations) and
// per-choice-point strategy decision histograms (via sim::DecisionObserver).
//
// Shards merge into a CoverageAccumulator in *global path order*: coverage
// runs use the curve runners' per-path RNG streams, worker w of k owns
// global paths w, w+k, w+2k, ..., and the accumulator replays the accepted
// prefix path by path. Every floating-point occupancy addition therefore
// happens in the same order for every worker count, making the merged
// profile — including the coverage-saturation series — byte-identical
// across workers at a fixed seed (docs/coverage.md).
#pragma once

#include <array>
#include <map>
#include <span>
#include <vector>

#include "eda/network.hpp"
#include "sim/strategy.hpp"
#include "support/telemetry.hpp"

namespace slimsim::sim {

/// Alternative id of "pure delay, no candidate" decisions (strategies may
/// schedule a delay without picking a candidate); sorts after every real
/// alternative of eda::ElementIndex.
inline constexpr std::uint32_t kDelayAlternative = 0xffffffffu;

/// Sparse coverage delta entries of one completed path, in first-touch
/// order (a pure function of the path itself, so deltas merge identically
/// no matter which worker produced them). Deltas live in flat per-shard
/// arenas — recording a path costs amortized appends, never a per-path
/// allocation.
struct PathCoverage {
    struct ModeEntry {
        std::uint32_t id = 0;
        std::uint32_t visits = 0;
        double occupancy = 0.0;
    };
    struct FireEntry {
        std::uint32_t id = 0;
        std::uint32_t count = 0;
    };
    struct DecisionEntry {
        std::uint32_t choice_point = 0; // shard-local choice-point id
        std::uint32_t alternative = 0;  // alternative id / kDelayAlternative
        std::uint32_t count = 0;
    };
};

/// Per-worker coverage accumulator. The path generator drives begin_path /
/// on_elapse / on_step / end_path; the strategy reports decisions through
/// the DecisionObserver hook. Dense scratch arrays are reused across paths
/// (cleared in O(touched elements)), so steady-state recording allocates
/// only the sealed per-path deltas.
class CoverageShard final : public DecisionObserver {
public:
    explicit CoverageShard(const eda::ElementIndex& index);

    void begin_path(const eda::NetworkState& s);
    /// Called when the network elapses d time units; O(1) — it only advances
    /// the path clock. Occupancy is credited when a process *leaves* a mode
    /// (on_step / end_path), which is exact because every mid-path location
    /// change is a fired transition reported in eda::StepInfo (activation
    /// cascades included).
    void on_elapse(double d) { path_time_ += d; }
    /// Called after a discrete step; credits fires, destination visits and
    /// the sojourn occupancy of every mode left by a fired transition.
    void on_step(const eda::StepInfo& info);
    void on_decision(std::span<const eda::Candidate> candidates,
                     const ScheduledChoice& choice) override;
    /// Seals the current path's delta.
    void end_path();

    [[nodiscard]] const eda::ElementIndex& index() const { return *index_; }
    [[nodiscard]] std::size_t path_count() const { return path_ends_.size(); }
    [[nodiscard]] std::span<const PathCoverage::ModeEntry> path_modes(std::size_t i) const {
        return {modes_flat_.data() + (i == 0 ? 0 : path_ends_[i - 1].modes),
                modes_flat_.data() + path_ends_[i].modes};
    }
    [[nodiscard]] std::span<const PathCoverage::FireEntry> path_fires(std::size_t i) const {
        return {fires_flat_.data() + (i == 0 ? 0 : path_ends_[i - 1].fires),
                fires_flat_.data() + path_ends_[i].fires};
    }
    [[nodiscard]] std::span<const PathCoverage::DecisionEntry>
    path_decisions(std::size_t i) const {
        return {decisions_flat_.data() + (i == 0 ? 0 : path_ends_[i - 1].decisions),
                decisions_flat_.data() + path_ends_[i].decisions};
    }
    [[nodiscard]] std::size_t choice_point_count() const { return cp_keys_.size(); }
    /// Sorted alternative-id key of a shard-local choice-point id.
    [[nodiscard]] const std::vector<std::uint32_t>& choice_point_key(std::uint32_t cp) const {
        return cp_keys_[cp];
    }

private:
    void touch_mode(std::uint32_t id) {
        if (mode_visits_[id] == 0 && occupancy_[id] == 0.0) touched_modes_.push_back(id);
    }

    const eda::ElementIndex* index_;
    // Incremental occupancy: model-time path clock plus each process's
    // current mode and entry time, so the per-elapse hot path is O(1)
    // instead of O(processes).
    double path_time_ = 0.0;
    std::vector<std::uint32_t> cur_mode_;
    std::vector<double> entered_at_;
    // Dense per-path scratch, indexed by element id.
    std::vector<std::uint32_t> mode_visits_;
    std::vector<double> occupancy_;
    std::vector<std::uint32_t> fires_;
    std::vector<std::uint32_t> touched_modes_;
    std::vector<std::uint32_t> touched_fires_;
    std::vector<PathCoverage::DecisionEntry> decisions_;
    std::vector<std::uint32_t> key_scratch_;
    std::vector<std::uint32_t> raw_scratch_;
    std::vector<std::uint32_t> last_raw_;
    static constexpr std::uint32_t kNoChoicePoint = 0xffffffffu;
    std::uint32_t last_cp_ = kNoChoicePoint;
    std::map<std::vector<std::uint32_t>, std::uint32_t> cp_by_key_;
    std::vector<std::vector<std::uint32_t>> cp_keys_;
    // Flat per-path delta arenas; path i owns the half-open entry ranges
    // [path_ends_[i-1], path_ends_[i]) (0 for the first path).
    struct PathEnd {
        std::uint32_t modes = 0;
        std::uint32_t fires = 0;
        std::uint32_t decisions = 0;
    };
    std::vector<PathCoverage::ModeEntry> modes_flat_;
    std::vector<PathCoverage::FireEntry> fires_flat_;
    std::vector<PathCoverage::DecisionEntry> decisions_flat_;
    std::vector<PathEnd> path_ends_;
};

/// Merges per-path deltas into the whole-run profile and tracks the
/// coverage-saturation series (distinct covered elements vs. paths).
class CoverageAccumulator {
public:
    explicit CoverageAccumulator(const eda::ElementIndex& index);

    /// Interns every choice point of `shard` and returns the shard-local id
    /// -> accumulator id translation, so merge_path pays plain vector
    /// indexing per decision entry instead of a keyed map lookup per path.
    [[nodiscard]] std::vector<std::uint32_t>
    intern_choice_points(const CoverageShard& shard);

    /// Folds in shard-local path `local_path`; call in global path order.
    /// `cp_translation` is intern_choice_points(shard).
    void merge_path(const CoverageShard& shard, std::size_t local_path,
                    std::span<const std::uint32_t> cp_translation);

    [[nodiscard]] telemetry::CoverageReport report() const;

private:
    const eda::ElementIndex* index_;
    std::uint64_t paths_ = 0;
    std::vector<std::uint64_t> visits_;
    std::vector<double> occupancy_;
    std::vector<std::uint64_t> fires_;
    // Choice points keyed by their alternative-id sets (shard-local ids are
    // translated to interned accumulator ids before merging). The report
    // iterates cp_ids_, so output order is key order regardless of the
    // interning order.
    std::map<std::vector<std::uint32_t>, std::uint32_t> cp_ids_;
    // Per-cp (alternative, count) pairs, kept sorted by alternative; the
    // handful of alternatives per choice point makes a flat vector cheaper
    // than a node-based map in the per-path merge loop.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> cp_alts_;
    std::vector<char> covered_; // modes, then transitions
    std::uint64_t covered_count_ = 0;
    std::vector<telemetry::CoverageSaturationPoint> saturation_;
};

/// Merges the accepted prefix of a sharded run: worker w of k owns global
/// paths w, w+k, ... and contributed its first accepted[w] paths. With one
/// shard this is plainly "the first accepted[0] paths".
[[nodiscard]] telemetry::CoverageReport
merge_coverage(std::span<const CoverageShard* const> shards,
               std::span<const std::uint64_t> accepted);

/// RAII: attaches a DecisionObserver to a caller-provided strategy for the
/// duration of a run, restoring the previous observer on scope exit (the
/// witness replay after the sampling loop must not pollute the profile).
class ObserverGuard {
public:
    ObserverGuard(Strategy& strategy, DecisionObserver* observer)
        : strategy_(&strategy), previous_(strategy.observer()) {
        strategy_->set_observer(observer);
    }
    ~ObserverGuard() { strategy_->set_observer(previous_); }
    ObserverGuard(const ObserverGuard&) = delete;
    ObserverGuard& operator=(const ObserverGuard&) = delete;

private:
    Strategy* strategy_;
    DecisionObserver* previous_;
};

} // namespace slimsim::sim
