// Observability options shared by the estimation runners: witness-path
// capture and live progress streaming. Kept free of heavy dependencies so
// SimOptions can embed them (the path generator itself ignores both; the
// runners act on them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace slimsim::sim {

/// Witness capture: retain the first K accepting and first K non-accepting
/// paths of a run (in accepted-sample order, so the selection is
/// deterministic in (seed, workers)) as replayable sim::Trace objects.
struct WitnessOptions {
    /// Paths to keep per kind (accepting / non-accepting); 0 disables
    /// witness capture entirely (the hot path then pays nothing).
    std::size_t per_kind = 0;
    /// Hard bound on the total retained trace text across all witnesses;
    /// steps beyond the budget are dropped (Trace::set_byte_limit).
    std::size_t max_bytes = 4u << 20;
};

/// One point of the live progress stream.
struct ProgressSnapshot {
    std::uint64_t samples = 0;
    std::uint64_t successes = 0;
    double estimate = 0.0;   // running p^
    double half_width = 0.0; // CLT confidence-interval half-width at 1-delta
    /// Samples the stop criterion requires (0 for adaptive criteria).
    std::uint64_t required = 0;
    double elapsed_seconds = 0.0;
    /// Extrapolated seconds to completion; < 0 when unknown.
    double eta_seconds = -1.0;
};

/// Invoked from the runner's consuming thread only, so callbacks can never
/// perturb the deterministic (seed, workers) sample order. Throttled to
/// min_interval_seconds; one final snapshot is always emitted at the end.
using ProgressFn = std::function<void(const ProgressSnapshot&)>;

struct ProgressOptions {
    ProgressFn callback; // null = progress streaming off
    double min_interval_seconds = 0.2;
    /// Confidence parameters used for the half-width / ETA extrapolation;
    /// run_analysis fills them from the request.
    double delta = 0.05;
    double eps = 0.01;
    /// Sample floor of an adaptive stop criterion (StopCriterion::
    /// min_sample_count); the ETA extrapolation never targets fewer samples,
    /// so it cannot report 0 while the criterion is still barred from
    /// stopping. run_analysis fills it from the criterion.
    std::uint64_t min_samples = 0;
    /// Active run-budget caps (sim/run_control RunBudget); 0 = uncapped.
    /// The reported ETA is min(criterion ETA, budget remaining), so a
    /// --max-seconds run never shows an ETA beyond its own deadline. Plain
    /// fields, not a RunBudget, to keep this header dependency-free.
    double budget_max_seconds = 0.0;
    std::uint64_t budget_max_samples = 0;
};

/// Derives the estimate, CI half-width and ETA for a snapshot. `required`
/// is the criterion's a-priori sample count (0 = adaptive: the ETA is then
/// extrapolated from the current variance via the Chow-Robbins stop rule).
[[nodiscard]] ProgressSnapshot make_progress_snapshot(std::uint64_t samples,
                                                      std::uint64_t successes,
                                                      std::uint64_t required,
                                                      double elapsed_seconds,
                                                      const ProgressOptions& options);

/// Bounded, coarsening in-memory ring of progress snapshots: the history a
/// dashboard plots from the /series endpoint (docs/observability.md).
///
/// Capacity is fixed; when full, every other retained point is dropped and
/// the sampling stride doubles, so the store always spans the whole run at
/// a resolution that degrades gracefully (capacity 512 holds a ~10 h run
/// at >= 1-minute resolution). The latest snapshot is always kept exactly.
/// push() is called from the runner's consuming thread; snapshot readers
/// (the HTTP thread) take the same mutex.
class SeriesStore {
public:
    explicit SeriesStore(std::size_t capacity = 512);

    void push(const ProgressSnapshot& snapshot);

    /// Points retained so far (coarsened), oldest first, plus the exact
    /// latest snapshot when the stride skipped it.
    [[nodiscard]] std::vector<ProgressSnapshot> points() const;

    /// The /series JSON document: {"stride":s,"count":n,"points":[{...}]}.
    [[nodiscard]] std::string to_json() const;

private:
    mutable std::mutex mutex_;
    const std::size_t capacity_;
    std::size_t stride_ = 1;
    std::uint64_t pushed_ = 0;
    std::vector<ProgressSnapshot> points_;
    ProgressSnapshot latest_;
    bool latest_retained_ = true;
};

} // namespace slimsim::sim
