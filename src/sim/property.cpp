#include "sim/property.hpp"

#include <sstream>

#include "slim/parser.hpp"
#include "slim/resolver.hpp"

namespace slimsim::sim {

namespace {

/// Symbol table over all global variables, with slot i == VarId i, so that
/// resolved goals evaluate with identity (empty) bindings.
slim::SymbolTable global_symbols(const slim::InstanceModel& model) {
    slim::SymbolTable table;
    for (const auto& v : model.vars) {
        slim::Symbol sym;
        sym.name = v.full_name;
        sym.kind = slim::SymKind::Data;
        sym.type = v.type;
        table.add(std::move(sym));
    }
    return table;
}

expr::ExprPtr resolve_source(const slim::InstanceModel& model, std::string_view source) {
    return resolve_goal(model, slim::parse_expression(source, "<property>"));
}

void check_interval(double lo, double hi) {
    if (!(hi > 0.0)) throw Error("property time bound must be positive");
    if (lo < 0.0 || lo > hi) throw Error("property time interval must satisfy 0 <= lo <= hi");
}

} // namespace

std::string to_string(FormulaKind k) {
    switch (k) {
    case FormulaKind::Reach: return "reach";
    case FormulaKind::Until: return "until";
    case FormulaKind::Globally: return "globally";
    }
    return "?";
}

expr::ExprPtr resolve_goal(const slim::InstanceModel& model, expr::ExprPtr goal) {
    SLIMSIM_ASSERT(goal != nullptr);
    const slim::SymbolTable table = global_symbols(model);
    DiagnosticSink sink;
    slim::resolve_expr(*goal, table, sink);
    sink.throw_if_errors("property resolution");
    if (!goal->type.is_bool()) {
        throw Error(goal->loc, "property goal must be a Boolean expression");
    }
    return goal;
}

TimedReachability make_reachability(const slim::InstanceModel& model,
                                    std::string_view goal_source, double bound) {
    return make_reachability_interval(model, goal_source, 0.0, bound);
}

PathFormula make_reachability_interval(const slim::InstanceModel& model,
                                       std::string_view goal_source, double lo,
                                       double hi) {
    check_interval(lo, hi);
    PathFormula f;
    f.kind = FormulaKind::Reach;
    f.goal = resolve_source(model, goal_source);
    f.lo = lo;
    f.bound = hi;
    std::ostringstream os;
    os << "<> [" << lo << "," << hi << "] " << goal_source;
    f.text = os.str();
    return f;
}

PathFormula make_until(const slim::InstanceModel& model, std::string_view hold_source,
                       std::string_view goal_source, double lo, double hi) {
    check_interval(lo, hi);
    PathFormula f;
    f.kind = FormulaKind::Until;
    f.hold = resolve_source(model, hold_source);
    f.goal = resolve_source(model, goal_source);
    f.lo = lo;
    f.bound = hi;
    std::ostringstream os;
    os << "(" << hold_source << ") U [" << lo << "," << hi << "] (" << goal_source << ")";
    f.text = os.str();
    return f;
}

PathFormula make_globally(const slim::InstanceModel& model, std::string_view goal_source,
                          double bound) {
    check_interval(0.0, bound);
    PathFormula f;
    f.kind = FormulaKind::Globally;
    f.goal = resolve_source(model, goal_source);
    f.bound = bound;
    std::ostringstream os;
    os << "[] [0," << bound << "] " << goal_source;
    f.text = os.str();
    return f;
}

} // namespace slimsim::sim
