#include "sim/hypothesis.hpp"

#include <chrono>
#include <sstream>

#include "stat/generators.hpp"

namespace slimsim::sim {

std::string to_string(HypothesisVerdict v) {
    switch (v) {
    case HypothesisVerdict::AcceptAbove: return "accept (P >= threshold)";
    case HypothesisVerdict::AcceptBelow: return "reject (P <= threshold)";
    case HypothesisVerdict::Inconclusive: return "inconclusive";
    }
    return "?";
}

std::string HypothesisResult::to_string() const {
    std::ostringstream os;
    os << slimsim::sim::to_string(verdict) << " at threshold " << threshold << " +- "
       << indifference << " (alpha = beta = " << delta << ", " << successes << "/"
       << samples << " paths, strategy " << strategy << ", " << wall_seconds << " s)";
    return os.str();
}

HypothesisResult test_hypothesis(const eda::Network& net, const PathFormula& formula,
                                 StrategyKind strategy, double threshold,
                                 std::uint64_t seed, const HypothesisOptions& options,
                                 telemetry::RunReport* report) {
    const auto start = std::chrono::steady_clock::now();
    const stat::Sprt sprt(threshold, options.indifference, options.delta);
    const auto strat = make_strategy(strategy);
    const PathGenerator gen(net, formula, *strat, options.sim);
    Rng rng(seed);
    stat::BernoulliSummary summary;
    std::array<std::size_t, kPathTerminalCount> terminals{};
    std::uint64_t next_mark = 1; // SPRT is adaptive: no a-priori sample count
    while (summary.count < options.max_samples && !sprt.should_stop(summary)) {
        const PathOutcome out = gen.run(rng);
        summary.add(out.satisfied);
        ++terminals[static_cast<std::size_t>(out.terminal)];
        if (report != nullptr && summary.count == next_mark) {
            report->stop_trajectory.push_back({summary.count, 0, summary.successes});
            next_mark *= 2;
        }
    }
    HypothesisResult result;
    const int verdict = sprt.verdict(summary);
    result.verdict = verdict > 0   ? HypothesisVerdict::AcceptAbove
                     : verdict < 0 ? HypothesisVerdict::AcceptBelow
                                   : HypothesisVerdict::Inconclusive;
    result.samples = summary.count;
    result.successes = summary.successes;
    result.threshold = threshold;
    result.indifference = options.indifference;
    result.delta = options.delta;
    result.strategy = strat->name();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != summary.count) {
            report->stop_trajectory.push_back({summary.count, 0, summary.successes});
        }
        report->value = summary.count > 0 ? summary.mean() : 0.0;
        report->verdict = slimsim::sim::to_string(result.verdict);
        report->samples = result.samples;
        report->successes = result.successes;
        report->strategy = result.strategy;
        report->criterion = sprt.name();
        report->seed = seed;
        report->workers = 1;
        report->terminals = terminal_histogram(terminals);
        report->worker_stats = {
            telemetry::WorkerStats{0, 0, result.samples, result.samples}};
    }
    return result;
}

} // namespace slimsim::sim
