// Witness-path capture: every estimate can ship concrete example paths —
// the first K accepting and first K non-accepting paths of the run — so a
// probability always comes with explaining traces (the batch counterpart of
// COMPASS's interactive trace inspection, paper Fig. 1).
//
// Capturing works by RNG snapshot + replay: the copyable Rng state is saved
// before each candidate path (32 bytes; no per-step cost on the hot path),
// and only the selected paths are re-simulated with full trace recording
// after the run. "First" is defined over the *accepted* sample order — for
// parallel runs the round-robin order (round r = sample r of worker 0..k-1)
// — so the selection is deterministic in (seed, workers). Replay is exact
// because strategies are stateless and path generation is a pure function
// of (network, formula, options, RNG state).
#pragma once

#include <span>

#include "sim/path_generator.hpp"
#include "support/rng.hpp"

namespace slimsim::sim {

/// A replayable reference to one simulated path.
struct PathSnapshot {
    std::uint64_t index = 0; // per-worker path index (0-based)
    Rng rng{0};              // RNG state immediately before the path
    PathOutcome outcome;
};

/// One captured witness path: identity, outcome, RNG state (for further
/// replay, e.g. VCD export) and the rendered trace.
struct Witness {
    std::size_t worker = 0;
    std::uint64_t path_index = 0;
    PathOutcome outcome;
    Rng rng{0};
    Trace trace;
};

/// Per-worker bounded keeper of the first K accepting and first K
/// non-accepting path snapshots. Single-threaded (one buffer per worker).
class WitnessBuffer {
public:
    WitnessBuffer() = default;
    explicit WitnessBuffer(std::size_t per_kind) : per_kind_(per_kind) {}

    [[nodiscard]] bool active() const { return per_kind_ > 0; }
    /// Both kinds full: callers may skip the pre-path RNG snapshot.
    [[nodiscard]] bool saturated() const {
        return accepting_.size() >= per_kind_ && rejecting_.size() >= per_kind_;
    }

    /// Offers the path with the given pre-path RNG state; keeps it if its
    /// kind still has room. Call in per-worker path order.
    void offer(std::uint64_t index, const Rng& pre_path_rng, const PathOutcome& outcome);

    [[nodiscard]] const std::vector<PathSnapshot>& accepting() const { return accepting_; }
    [[nodiscard]] const std::vector<PathSnapshot>& rejecting() const { return rejecting_; }

private:
    std::size_t per_kind_ = 0;
    std::vector<PathSnapshot> accepting_;
    std::vector<PathSnapshot> rejecting_;
};

/// Selects the globally-first K accepting and K non-accepting snapshots over
/// the accepted sample order: per-worker snapshots are merged by
/// (path index, worker) — the round-robin acceptance order — and snapshots
/// of never-accepted samples (index >= accepted_per_worker[w]) are skipped.
/// Returns (worker, snapshot) pairs, accepting paths first.
[[nodiscard]] std::vector<std::pair<std::size_t, PathSnapshot>> select_witness_paths(
    std::span<const WitnessBuffer> buffers,
    std::span<const std::uint64_t> accepted_per_worker, std::size_t per_kind);

/// Replays each selected path with full trace recording under the shared
/// byte budget. `replay_gen` must be built from the same network, formula,
/// strategy (kind) and simulation options as the run — but with telemetry
/// and tracing stripped, so replay does not double-count instruments.
[[nodiscard]] std::vector<Witness> replay_witnesses(
    const PathGenerator& replay_gen,
    std::span<const std::pair<std::size_t, PathSnapshot>> selected,
    std::size_t max_bytes);

} // namespace slimsim::sim
