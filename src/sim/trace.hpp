// Human-readable recording of one simulated path.
#pragma once

#include <string>
#include <vector>

#include "eda/network.hpp"

namespace slimsim::sim {

struct TraceStep {
    double time = 0.0;
    std::string description;
};

class Trace {
public:
    /// Caps retained step text at `bytes` (0 = unlimited). Steps beyond the
    /// budget are counted but not stored, so a pathological path cannot blow
    /// up memory; the result fields are recorded regardless.
    void set_byte_limit(std::size_t bytes) { byte_limit_ = bytes; }

    void record(double time, std::string description) {
        if (byte_limit_ != 0 && bytes_ + description.size() > byte_limit_) {
            ++omitted_;
            return;
        }
        bytes_ += description.size() + sizeof(TraceStep);
        steps_.push_back({time, std::move(description)});
    }

    /// Records how the path ended: the terminal ("goal", "time-bound", ...),
    /// whether the formula was satisfied, and the final model time — so a
    /// trace is self-contained (timeout vs goal-reached is explicit).
    void set_result(double end_time, std::string terminal, bool satisfied) {
        finished_ = true;
        end_time_ = end_time;
        terminal_ = std::move(terminal);
        satisfied_ = satisfied;
    }

    [[nodiscard]] const std::vector<TraceStep>& steps() const { return steps_; }
    [[nodiscard]] bool finished() const { return finished_; }
    [[nodiscard]] double end_time() const { return end_time_; }
    [[nodiscard]] const std::string& terminal() const { return terminal_; }
    [[nodiscard]] bool satisfied() const { return satisfied_; }
    /// Steps dropped by the byte limit.
    [[nodiscard]] std::size_t omitted() const { return omitted_; }
    /// Approximate retained size of the recorded step text.
    [[nodiscard]] std::size_t memory_bytes() const { return bytes_; }

    [[nodiscard]] std::string to_string() const;

private:
    std::vector<TraceStep> steps_;
    std::size_t byte_limit_ = 0;
    std::size_t bytes_ = 0;
    std::size_t omitted_ = 0;
    bool finished_ = false;
    bool satisfied_ = false;
    double end_time_ = 0.0;
    std::string terminal_;
};

/// Describes a fired step: "gps1: acquisition -> active [fix]; ...".
[[nodiscard]] std::string describe_step(const eda::Network& net, const eda::StepInfo& info);

/// One-line state summary of selected variables ("name=value ...").
[[nodiscard]] std::string describe_state(const eda::Network& net,
                                         const eda::NetworkState& state,
                                         std::size_t max_vars = 16);

} // namespace slimsim::sim
