// Human-readable recording of one simulated path.
#pragma once

#include <string>
#include <vector>

#include "eda/network.hpp"

namespace slimsim::sim {

struct TraceStep {
    double time = 0.0;
    std::string description;
};

class Trace {
public:
    void record(double time, std::string description) {
        steps_.push_back({time, std::move(description)});
    }

    [[nodiscard]] const std::vector<TraceStep>& steps() const { return steps_; }
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<TraceStep> steps_;
};

/// Describes a fired step: "gps1: acquisition -> active [fix]; ...".
[[nodiscard]] std::string describe_step(const eda::Network& net, const eda::StepInfo& info);

/// One-line state summary of selected variables ("name=value ...").
[[nodiscard]] std::string describe_state(const eda::Network& net,
                                         const eda::NetworkState& state,
                                         std::size_t max_vars = 16);

} // namespace slimsim::sim
