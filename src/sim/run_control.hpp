// Run hardening: budgets with graceful degradation, cooperative
// (signal-safe) interruption, deterministic checkpoint/resume, and
// fault-isolated path generation (docs/robustness.md).
//
// Long Monte Carlo campaigns must degrade gracefully instead of throwing
// away hours of accepted samples: a budget or a SIGINT stops the run at the
// next accepted sample, the partial estimate is returned with its *achieved*
// half-width and a RunStatus, and a versioned binary checkpoint lets a later
// run resume deterministically. All stop causes funnel through one
// stop/drain path (RunGovernor), so the repo's byte-identical-across-workers
// invariant is preserved: checkpointed/resumed runs use per-path RNG streams
// (path j simulates with Rng(seed).split(j)) and the accepted prefix is the
// same for every worker count and every interruption point.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace slimsim::sim {

/// How an estimation run ended.
enum class RunStatus : std::uint8_t {
    Converged,       // the stop criterion was met
    BudgetExhausted, // a RunBudget limit stopped the run first
    Interrupted,     // the cooperative interrupt flag (SIGINT/SIGTERM) fired
    Degraded,        // FaultPolicy::Tolerate exceeded max_path_errors
};

[[nodiscard]] std::string to_string(RunStatus status);

/// Resource budget consulted in the consumer loop; 0 = unlimited. On
/// exhaustion the run stops cleanly with RunStatus::BudgetExhausted and a
/// partial result — never an exception.
struct RunBudget {
    double max_wall_seconds = 0.0;
    std::uint64_t max_samples = 0;
    /// Bound on discrete steps summed over *accepted* paths (deterministic,
    /// unlike anything counted over generated paths).
    std::uint64_t max_total_steps = 0;

    [[nodiscard]] bool active() const {
        return max_wall_seconds > 0.0 || max_samples > 0 || max_total_steps > 0;
    }
};

/// What a throwing path (Zeno guard, StuckPolicy::Error) does to the run.
enum class FaultPolicyKind : std::uint8_t {
    FailFast, // rethrow: the run aborts (default, the pre-hardening behavior)
    Tolerate, // record a PathTerminal::Error sample and keep sampling
};

struct FaultPolicy {
    FaultPolicyKind kind = FaultPolicyKind::FailFast;
    /// Tolerate only: accepted Error samples beyond this downgrade the run
    /// to RunStatus::Degraded and stop it.
    std::uint64_t max_path_errors = 100;
};

/// Cap on quarantined per-path error messages kept in results/checkpoints.
inline constexpr std::size_t kMaxQuarantinedErrors = 16;

/// Versioned binary snapshot of an estimation run (docs/robustness.md).
/// Captures everything needed to continue deterministically with per-path
/// RNG streams: the global path cursor (== accepted samples; the resumed
/// worker w of k owns paths cursor + w, cursor + w + k, ...), the summary
/// state (successes; for curve runs the Fenwick tree over first-hit
/// buckets), terminal tag counts, the accepted-step total, and the
/// quarantined error log. The header binds the snapshot to (model hash,
/// seed, property, strategy, criterion, curve grid); load()/validate()
/// reject mismatches with a diagnostic naming the --resume flag.
struct RunCheckpoint {
    static constexpr std::uint32_t kVersion = 1;

    std::uint32_t version = kVersion;
    std::uint64_t model_hash = 0;    // CompiledModel::content_hash() of the model
    std::uint64_t seed = 0;
    std::uint64_t property_hash = 0; // fnv1a64 over the property text
    std::string strategy;
    std::string criterion;
    std::uint64_t cursor = 0;      // accepted samples == next global path index
    std::uint64_t successes = 0;   // largest-bound successes for curve runs
    std::uint64_t total_steps = 0; // discrete steps over accepted paths
    std::vector<std::uint64_t> terminal_tags;
    std::vector<std::string> error_log;
    /// Curve runs only: the bound grid and the Fenwick tree snapshot
    /// (size bounds + 1); both empty for scalar estimation.
    std::vector<double> curve_bounds;
    std::vector<std::uint64_t> curve_tree;

    /// Writes the snapshot atomically (temp file + rename); throws Error
    /// naming the path on I/O failure. Returns the serialized size in bytes
    /// (checkpoint-write metrics).
    std::size_t save(const std::string& path) const;

    /// Throws Error naming --resume on I/O failure, bad magic, unsupported
    /// version, truncation, or checksum mismatch.
    [[nodiscard]] static RunCheckpoint load(const std::string& path);

    /// Header validation against the requested run; throws Error naming
    /// --resume on any mismatch (model hash, seed, property, strategy,
    /// criterion, curve grid).
    void validate(std::uint64_t expected_model_hash, std::uint64_t expected_seed,
                  const std::string& property_text, const std::string& strategy_name,
                  const std::string& criterion_name,
                  const std::vector<double>& expected_curve_bounds) const;
};

/// Run-hardening options threaded to the estimation runners through
/// SimOptions::control. The path generator itself ignores them.
struct RunControlOptions {
    RunBudget budget;
    FaultPolicy fault;
    /// Cooperative interrupt flag, polled in the consumer loop; the CLI
    /// wires the async-signal-safe SIGINT/SIGTERM flag here.
    const std::atomic<bool>* interrupt = nullptr;
    /// When non-empty, a checkpoint is written when the run stops (for any
    /// status) and, if checkpoint_every > 0, every checkpoint_every accepted
    /// samples along the way.
    std::string checkpoint_path;
    std::uint64_t checkpoint_every = 0;
    /// Snapshot to resume from (validated against this run's identity);
    /// must outlive the run. Resuming forces per-path RNG streams.
    const RunCheckpoint* resume = nullptr;
    /// Identity of the model (CompiledModel::content_hash(): a deterministic
    /// hash of the behavioral content, insensitive to reformatting) recorded
    /// into and validated against checkpoints; 0 skips the model-hash check.
    std::uint64_t model_hash = 0;
    /// Force per-path RNG streams (Rng(seed).split(j)) even without
    /// checkpointing, making results byte-identical across worker counts.
    bool deterministic_streams = false;

    /// Checkpointing and resuming require per-path streams: the cursor is
    /// meaningless under per-worker streams.
    [[nodiscard]] bool per_path_streams() const {
        return deterministic_streams || resume != nullptr || checkpoint_every > 0 ||
               !checkpoint_path.empty();
    }
    [[nodiscard]] bool hardened() const {
        return budget.active() || interrupt != nullptr || per_path_streams() ||
               fault.kind == FaultPolicyKind::Tolerate;
    }
};

/// The single stop/drain decision point every hardened runner consults.
/// Deterministic causes (sample/step budgets, the error budget) are checked
/// before timing-dependent ones (interrupt, wall clock), so a run limited by
/// max_samples stops at exactly the same accepted prefix on every host.
/// Once stopped, the status and cause are latched.
class RunGovernor {
public:
    RunGovernor(const RunControlOptions& control,
                std::chrono::steady_clock::time_point start)
        : control_(control), start_(start) {}

    /// True when the run should stop now. `samples`, `steps` and `errors`
    /// are totals over *accepted* samples (errors = accepted
    /// PathTerminal::Error tags).
    bool should_stop(std::uint64_t samples, std::uint64_t steps, std::uint64_t errors);

    [[nodiscard]] bool stopped() const { return stopped_; }
    /// Converged until a stop fires (the caller reports Converged when the
    /// criterion, not the governor, ended the run).
    [[nodiscard]] RunStatus status() const { return status_; }
    [[nodiscard]] const std::string& stop_cause() const { return cause_; }

private:
    void stop(RunStatus status, std::string cause);

    const RunControlOptions& control_;
    std::chrono::steady_clock::time_point start_;
    bool stopped_ = false;
    RunStatus status_ = RunStatus::Converged;
    std::string cause_;
};

/// FNV-1a 64-bit hash (checkpoint checksums and identity hashes).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size);
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text);

/// FNV-1a over a file's bytes (model identity for checkpoints); throws
/// Error naming the path when the file cannot be read.
[[nodiscard]] std::uint64_t hash_file(const std::string& path);

/// Async-signal-safe cooperative interruption: install_signal_handlers()
/// routes SIGINT/SIGTERM to a lock-free atomic flag (a second signal while
/// the flag is set force-exits with status 130), interrupt_flag() is the
/// flag to wire into RunControlOptions::interrupt, clear_interrupt() resets
/// it (tests).
void install_signal_handlers();
[[nodiscard]] const std::atomic<bool>* interrupt_flag();
void clear_interrupt();

} // namespace slimsim::sim
