// Nested probabilistic operators (paper, Sec. VII-A).
//
// The paper's future work asks for "the full spectrum of CSL ... includ[ing]
// nested operators", noting that nested checking "has a fairly high
// complexity, but is manageable by using memoization techniques" [Younes].
// This module implements one level of nesting:
//
//     P( <> [0,u]  Phi )   with   Phi ::= atom | P>=theta( path formula )
//                                      | Phi and Phi | Phi or Phi | not Phi
//
// The truth of an inner P>=theta(...) at a visited state is decided by a
// *sub-simulation* from that state (an SPRT hypothesis test) and memoized by
// the state's discrete projection. Consequences and restrictions:
//  * inner path formulas must be discrete-state-dependent only (no clocks or
//    continuous variables in their atoms) so the memo key is sound;
//  * the outer goal containing a nested operator is checked at discrete
//    instants of the path, not continuously along elapses (its truth can
//    only change at discrete steps, by the restriction above);
//  * inner verdicts carry the SPRT's error probability; the outer estimate
//    inherits it (quantified in the returned diagnostics).
#pragma once

#include "eda/state.hpp"
#include "sim/hypothesis.hpp"

namespace slimsim::sim {

/// A state formula with (one level of) nested probabilistic operators.
class StateFormula {
public:
    /// Atomic Boolean expression over global names.
    static StateFormula atom(expr::ExprPtr e);
    /// P(path) >= threshold, decided by sub-simulation with the given SPRT
    /// parameters.
    static StateFormula probability_at_least(PathFormula path, double threshold,
                                             double indifference = 0.02,
                                             double delta = 0.01);
    static StateFormula conjunction(StateFormula a, StateFormula b);
    static StateFormula disjunction(StateFormula a, StateFormula b);
    static StateFormula negation(StateFormula a);

    [[nodiscard]] bool has_nested() const;

private:
    friend class NestedChecker;
    enum class Kind : std::uint8_t { Atom, Prob, And, Or, Not };
    Kind kind = Kind::Atom;
    expr::ExprPtr atom_;
    std::shared_ptr<PathFormula> inner_;
    double threshold_ = 0.0;
    double indifference_ = 0.0;
    double delta_ = 0.0;
    std::shared_ptr<StateFormula> a_, b_;
};

struct NestedOptions {
    StrategyKind strategy = StrategyKind::Asap;
    StrategyKind inner_strategy = StrategyKind::Asap;
    double delta = 0.05;
    double eps = 0.02;
    std::size_t inner_max_samples = 200'000;
    SimOptions sim;
};

struct NestedResult {
    double estimate = 0.0;
    std::size_t samples = 0;
    std::size_t inner_tests = 0;   // sub-simulations actually run
    std::size_t memo_hits = 0;     // nested queries answered from the memo
    std::size_t inner_paths = 0;   // total sub-simulation paths
    double wall_seconds = 0.0;

    [[nodiscard]] std::string to_string() const;
};

/// Estimates P( <> [0,bound] phi ) where phi may contain nested
/// P>=theta(...) operators. Deterministic in `seed`.
[[nodiscard]] NestedResult estimate_nested(const eda::Network& net,
                                           const StateFormula& phi, double bound,
                                           std::uint64_t seed,
                                           const NestedOptions& options = {});

} // namespace slimsim::sim
