#include "sim/run_control.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "support/atomic_file.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::sim {

std::string to_string(RunStatus status) {
    switch (status) {
    case RunStatus::Converged: return "converged";
    case RunStatus::BudgetExhausted: return "budget_exhausted";
    case RunStatus::Interrupted: return "interrupted";
    case RunStatus::Degraded: return "degraded";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Hashing

std::uint64_t fnv1a64(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t fnv1a64(const std::string& text) { return fnv1a64(text.data(), text.size()); }

std::uint64_t hash_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot read model file for checkpoint hash: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    return fnv1a64(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// Checkpoint serialization
//
// Layout (little-endian, no padding): 8-byte magic "SLIMCKPT", u32 version,
// then the payload, then fnv1a64 over magic+version+payload. Strings and
// vectors are length-prefixed with u64 counts. Doubles are bit-copied
// through u64, so a round trip is bit-exact.

namespace {

constexpr char kMagic[8] = {'S', 'L', 'I', 'M', 'C', 'K', 'P', 'T'};

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
    put_u64(out, s.size());
    out.append(s);
}

/// Sequential reader over the loaded bytes; every primitive checks bounds so
/// truncated files fail with a diagnostic instead of UB.
struct Reader {
    const std::string& bytes;
    std::size_t pos = 0;

    void need(std::uint64_t n) const {
        // Overflow-safe form of pos + n > size: `n` can be an attacker- or
        // corruption-controlled u64 straight off the wire.
        if (pos > bytes.size() || n > bytes.size() - pos)
            throw Error("--resume: checkpoint is truncated or corrupt");
    }
    /// Length prefix of a vector of `elem_size`-byte elements; rejects
    /// counts the remaining bytes cannot possibly hold, so a corrupt count
    /// yields the one-line --resume diagnostic instead of a huge resize.
    std::uint64_t get_count(std::size_t elem_size) {
        const std::uint64_t n = get_u64();
        if (elem_size != 0 && n > (bytes.size() - pos) / elem_size)
            throw Error("--resume: checkpoint is truncated or corrupt");
        return n;
    }
    std::uint32_t get_u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
        pos += 4;
        return v;
    }
    std::uint64_t get_u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[pos + i])) << (8 * i);
        pos += 8;
        return v;
    }
    double get_f64() {
        const std::uint64_t bits = get_u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }
    std::string get_string() {
        const std::uint64_t n = get_u64();
        need(n);
        std::string s = bytes.substr(pos, n);
        pos += n;
        return s;
    }
};

} // namespace

std::size_t RunCheckpoint::save(const std::string& path) const {
    std::string out;
    out.append(kMagic, sizeof(kMagic));
    put_u32(out, version);
    put_u64(out, model_hash);
    put_u64(out, seed);
    put_u64(out, property_hash);
    put_string(out, strategy);
    put_string(out, criterion);
    put_u64(out, cursor);
    put_u64(out, successes);
    put_u64(out, total_steps);
    put_u64(out, terminal_tags.size());
    for (std::uint64_t v : terminal_tags) put_u64(out, v);
    put_u64(out, error_log.size());
    for (const std::string& msg : error_log) put_string(out, msg);
    put_u64(out, curve_bounds.size());
    for (double b : curve_bounds) put_f64(out, b);
    put_u64(out, curve_tree.size());
    for (std::uint64_t v : curve_tree) put_u64(out, v);
    put_u64(out, fnv1a64(out.data(), out.size()));

    // Temp file + rename (support/atomic_file) so a signal arriving
    // mid-write never leaves a half-written checkpoint behind the final name.
    return support::write_file_atomic(path, out, "cannot write checkpoint file");
}

RunCheckpoint RunCheckpoint::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("--resume: cannot read checkpoint file `" + path + "`");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();

    if (bytes.size() < sizeof(kMagic) + 4 + 8 ||
        std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        throw Error("--resume: `" + path + "` is not a slimsim checkpoint");
    const std::uint64_t stored_sum =
        Reader{bytes, bytes.size() - 8}.get_u64();
    if (fnv1a64(bytes.data(), bytes.size() - 8) != stored_sum)
        throw Error("--resume: checkpoint failed its checksum (file truncated or "
                    "corrupt): " + path);

    Reader r{bytes, sizeof(kMagic)};
    RunCheckpoint ck;
    ck.version = r.get_u32();
    if (ck.version != kVersion)
        throw Error("--resume: checkpoint version " + std::to_string(ck.version) +
                    " is not supported (this build reads version " +
                    std::to_string(kVersion) + ")");
    ck.model_hash = r.get_u64();
    ck.seed = r.get_u64();
    ck.property_hash = r.get_u64();
    ck.strategy = r.get_string();
    ck.criterion = r.get_string();
    ck.cursor = r.get_u64();
    ck.successes = r.get_u64();
    ck.total_steps = r.get_u64();
    ck.terminal_tags.resize(r.get_count(8));
    for (auto& v : ck.terminal_tags) v = r.get_u64();
    ck.error_log.resize(r.get_count(8)); // 8 = u64 length prefix per string
    for (auto& msg : ck.error_log) msg = r.get_string();
    ck.curve_bounds.resize(r.get_count(8));
    for (auto& b : ck.curve_bounds) b = r.get_f64();
    ck.curve_tree.resize(r.get_count(8));
    for (auto& v : ck.curve_tree) v = r.get_u64();
    return ck;
}

void RunCheckpoint::validate(std::uint64_t expected_model_hash, std::uint64_t expected_seed,
                             const std::string& property_text, const std::string& strategy_name,
                             const std::string& criterion_name,
                             const std::vector<double>& expected_curve_bounds) const {
    if (expected_model_hash != 0 && model_hash != 0 && model_hash != expected_model_hash)
        throw Error("--resume checkpoint was taken from a different model: its "
                    "content hash does not match the model passed on the command "
                    "line (re-run with the original model, or drop --resume to "
                    "start fresh)");
    if (seed != expected_seed)
        throw Error("--resume checkpoint seed " + std::to_string(seed) +
                    " does not match --seed " + std::to_string(expected_seed));
    if (property_hash != fnv1a64(property_text))
        throw Error("--resume checkpoint was taken for a different property "
                    "(goal/bound mismatch)");
    if (strategy != strategy_name)
        throw Error("--resume checkpoint strategy `" + strategy +
                    "` does not match requested strategy `" + strategy_name + "`");
    if (criterion != criterion_name)
        throw Error("--resume checkpoint stop criterion `" + criterion +
                    "` does not match requested criterion `" + criterion_name + "`");
    if (curve_bounds != expected_curve_bounds)
        throw Error("--resume checkpoint curve grid does not match the requested "
                    "--curve bounds");
}

// ---------------------------------------------------------------------------
// RunGovernor

bool RunGovernor::should_stop(std::uint64_t samples, std::uint64_t steps,
                              std::uint64_t errors) {
    if (stopped_) return true;
    // Deterministic causes first, in a fixed order, so runs limited by a
    // sample/step/error budget stop at the same accepted prefix everywhere.
    if (control_.fault.kind == FaultPolicyKind::Tolerate &&
        errors > control_.fault.max_path_errors) {
        stop(RunStatus::Degraded,
             "path errors (" + std::to_string(errors) + ") exceeded --max-path-errors " +
                 std::to_string(control_.fault.max_path_errors));
        return true;
    }
    if (control_.budget.max_samples > 0 && samples >= control_.budget.max_samples) {
        stop(RunStatus::BudgetExhausted,
             "--max-samples budget reached (" + std::to_string(samples) + " samples)");
        return true;
    }
    if (control_.budget.max_total_steps > 0 && steps >= control_.budget.max_total_steps) {
        stop(RunStatus::BudgetExhausted,
             "--max-steps budget reached (" + std::to_string(steps) + " total steps)");
        return true;
    }
    if (control_.interrupt != nullptr &&
        control_.interrupt->load(std::memory_order_relaxed)) {
        stop(RunStatus::Interrupted, "interrupted by signal");
        return true;
    }
    if (control_.budget.max_wall_seconds > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
        if (elapsed >= control_.budget.max_wall_seconds) {
            stop(RunStatus::BudgetExhausted, "--max-seconds budget reached");
            return true;
        }
    }
    return false;
}

void RunGovernor::stop(RunStatus status, std::string cause) {
    stopped_ = true;
    status_ = status;
    cause_ = std::move(cause);
}

// ---------------------------------------------------------------------------
// Signal handling
//
// The handler only touches a lock-free atomic flag and (on the second
// signal) _exit — both async-signal-safe. Everything else happens in the
// consumer loop, which polls the flag between accepted samples.

namespace {

std::atomic<bool> g_interrupted{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free atomic flag");

extern "C" void slimsim_signal_handler(int) {
    if (g_interrupted.exchange(true, std::memory_order_relaxed)) {
        _exit(130); // second signal: the user really wants out, now
    }
}

} // namespace

void install_signal_handlers() {
    struct sigaction sa = {};
    sa.sa_handler = slimsim_signal_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

const std::atomic<bool>* interrupt_flag() { return &g_interrupted; }

void clear_interrupt() { g_interrupted.store(false, std::memory_order_relaxed); }

} // namespace slimsim::sim
