// SLIMWIRE v1: the framed byte protocol between the supervision coordinator
// and its worker subprocesses (docs/supervision.md).
//
// Every frame is little-endian:
//
//   [u32 len][u32 type][payload ...][u64 checksum]
//
// where `len` counts every byte after the length field itself (4 for the
// type + payload + 8 for the checksum), and `checksum` is fnv1a64 over the
// type and payload bytes. A frame whose checksum does not verify — or whose
// length is structurally impossible — is *corrupt*: the coordinator treats
// the sending worker as failed (kill, restart, reassign), never trusting
// any later bytes from the same stream.
//
// Payload primitives match the checkpoint serializer: u8/u32/u64 raw LE,
// f64 bit-copied through u64 (bit-exact round trip — time bounds must not
// pass through decimal text), strings u64-length-prefixed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace slimsim::sim::supervise {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Upper bound on a single frame (sanity check before buffering a length).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Frame types. Direction is fixed per type.
enum class FrameType : std::uint32_t {
    Hello = 1,     // worker -> coordinator: protocol version, pid
    Setup = 2,     // coordinator -> worker: the full work assignment
    Samples = 3,   // worker -> coordinator: a batch of path outcomes
    Heartbeat = 4, // worker -> coordinator: liveness while no samples flow
    Fatal = 5,     // worker -> coordinator: deterministic error, run must abort
};

/// Payload writers (append to `out`).
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_f64(std::string& out, double v);
void put_string(std::string& out, std::string_view s);

/// Sequential bounds-checked payload reader; throws slimsim::Error
/// ("malformed SLIMWIRE frame ...") on truncation, so a corrupt payload that
/// happens to pass the checksum still fails closed.
class PayloadReader {
public:
    explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}

    [[nodiscard]] std::uint8_t get_u8();
    [[nodiscard]] std::uint32_t get_u32();
    [[nodiscard]] std::uint64_t get_u64();
    [[nodiscard]] double get_f64();
    [[nodiscard]] std::string get_string();
    [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

private:
    void need(std::uint64_t n) const;

    std::string_view bytes_;
    std::size_t pos_ = 0;
};

/// One parsed frame.
struct Frame {
    FrameType type = FrameType::Hello;
    std::string payload;
};

/// Serializes a complete frame (length + type + payload + checksum).
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// A deliberately corrupt encoding of the same frame: valid structure, last
/// checksum byte flipped. Used by the `frame-corrupt@N` fault injection.
[[nodiscard]] std::string encode_frame_corrupt(FrameType type, std::string_view payload);

/// Incremental frame parser over a worker's byte stream.
class FrameBuffer {
public:
    enum class Status : std::uint8_t {
        Ok,       // a frame was produced
        NeedMore, // the buffer holds no complete frame yet
        Corrupt,  // checksum/length violation: abandon this stream
    };

    void feed(const char* data, std::size_t n) { data_.append(data, n); }

    /// Extracts the next complete frame. After Corrupt the buffer is
    /// poisoned: every later call returns Corrupt (a framing error makes
    /// all subsequent bytes unattributable).
    Status next(Frame& out);

    [[nodiscard]] std::size_t buffered() const { return data_.size(); }

private:
    std::string data_;
    bool poisoned_ = false;
};

/// Blocking framed I/O over a socket fd (the worker side; the coordinator
/// uses non-blocking reads through FrameBuffer). Both retry on EINTR and
/// use MSG_NOSIGNAL, so a vanished peer surfaces as an Error, not SIGPIPE.
/// send_bytes returns false when the peer is gone (EPIPE/ECONNRESET).
[[nodiscard]] bool send_bytes(int fd, std::string_view bytes);
/// Reads one frame; throws Error on EOF, read error, or a corrupt frame.
[[nodiscard]] Frame read_frame_blocking(int fd);

} // namespace slimsim::sim::supervise
