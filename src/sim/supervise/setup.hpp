// Internal: the SETUP frame payload — the complete work assignment a
// coordinator hands a (re)spawned worker. Shared by worker.cpp and
// supervisor.cpp only; the layout is part of SLIMWIRE v1
// (docs/supervision.md).
//
// Time bounds travel as bit-exact f64 (never through decimal text: the
// property's display spelling is 6-significant-digit formatted and would
// desynchronize worker RNG-stream outcomes from the coordinator's
// reference run).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/supervise/wire.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::sim::supervise {

struct WireSetup {
    std::uint64_t seed = 0;
    std::uint64_t model_hash = 0; // CompiledModel::content_hash() expected
    std::string model_path;
    std::uint8_t formula_kind = 0; // sim::FormulaKind
    double lo = 0.0;
    double bound = 0.0; // simulation horizon (curve runs: largest bound)
    std::string goal_text;
    std::string hold_text; // Until only
    std::string strategy;
    std::uint8_t deadlock = 0; // sim::StuckPolicy
    std::uint8_t timelock = 0; // sim::StuckPolicy
    std::uint8_t memory = 0;   // sim::MemoryPolicy
    std::uint64_t max_steps = 0;
    std::uint8_t tolerate = 0; // FaultPolicy::Tolerate
    std::uint64_t w = 0;       // worker slot
    std::uint64_t k = 1;       // worker count
    std::uint64_t base = 0;    // resumed global path cursor
    /// First local index this incarnation generates (0 on the initial
    /// spawn; the predecessor's acknowledged count on a restart).
    std::uint64_t start_local = 0;
    double heartbeat_seconds = 0.5;
    std::uint32_t batch = 64;
    struct Injection {
        std::uint8_t kind = 0; // InjectKind
        std::uint64_t path = 0;
    };
    /// Unfired injections owned by this slot with local >= start_local.
    std::vector<Injection> injections;
};

inline std::string encode_setup(const WireSetup& s) {
    std::string p;
    put_u32(p, kProtocolVersion);
    put_u64(p, s.seed);
    put_u64(p, s.model_hash);
    put_string(p, s.model_path);
    put_u8(p, s.formula_kind);
    put_f64(p, s.lo);
    put_f64(p, s.bound);
    put_string(p, s.goal_text);
    put_string(p, s.hold_text);
    put_string(p, s.strategy);
    put_u8(p, s.deadlock);
    put_u8(p, s.timelock);
    put_u8(p, s.memory);
    put_u64(p, s.max_steps);
    put_u8(p, s.tolerate);
    put_u64(p, s.w);
    put_u64(p, s.k);
    put_u64(p, s.base);
    put_u64(p, s.start_local);
    put_f64(p, s.heartbeat_seconds);
    put_u32(p, s.batch);
    put_u32(p, static_cast<std::uint32_t>(s.injections.size()));
    for (const auto& inj : s.injections) {
        put_u8(p, inj.kind);
        put_u64(p, inj.path);
    }
    return p;
}

inline WireSetup decode_setup(std::string_view payload) {
    PayloadReader r(payload);
    const std::uint32_t version = r.get_u32();
    if (version != kProtocolVersion)
        throw Error("SLIMWIRE: protocol version mismatch (peer " +
                    std::to_string(version) + ", this build " +
                    std::to_string(kProtocolVersion) + ")");
    WireSetup s;
    s.seed = r.get_u64();
    s.model_hash = r.get_u64();
    s.model_path = r.get_string();
    s.formula_kind = r.get_u8();
    s.lo = r.get_f64();
    s.bound = r.get_f64();
    s.goal_text = r.get_string();
    s.hold_text = r.get_string();
    s.strategy = r.get_string();
    s.deadlock = r.get_u8();
    s.timelock = r.get_u8();
    s.memory = r.get_u8();
    s.max_steps = r.get_u64();
    s.tolerate = r.get_u8();
    s.w = r.get_u64();
    s.k = r.get_u64();
    s.base = r.get_u64();
    s.start_local = r.get_u64();
    s.heartbeat_seconds = r.get_f64();
    s.batch = r.get_u32();
    const std::uint32_t n = r.get_u32();
    s.injections.resize(n);
    for (auto& inj : s.injections) {
        inj.kind = r.get_u8();
        inj.path = r.get_u64();
    }
    return s;
}

} // namespace slimsim::sim::supervise
