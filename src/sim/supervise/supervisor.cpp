// Coordinator side of process-isolated supervision (docs/supervision.md).
//
// Single-threaded by design: one poll(2) loop owns every worker socket, the
// sample collector, the journal, metrics and all restart bookkeeping — no
// coordinator-side threads, so the subsystem is trivially TSan-clean and
// every serial journal/metric event has a total order.
//
// Byte-identity argument (the tentpole invariant): workers only ever
// *generate* samples; which samples enter the estimate — and in what order
// — is decided here, by SampleCollector::drain_ordered over global path
// order, with the exact same stop predicate as the in-process per-path
// runners. A worker failure merely delays its stream: the replacement
// regenerates the unacknowledged tail from the same per-path RNG streams
// (Rng(seed).split(j)), so the accepted prefix — and with it the estimate,
// terminal histogram, curve, trajectory marks and checkpoint cursor — is
// identical at every (seed, process count, crash schedule).
#include "sim/supervise/supervise.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "props/pattern.hpp"
#include "sim/live_metrics.hpp"
#include "sim/supervise/setup.hpp"
#include "stat/collector.hpp"
#include "stat/curve.hpp"
#include "support/memprobe.hpp"

namespace slimsim::sim::supervise {

namespace {

using Clock = std::chrono::steady_clock;

/// Failure classification of a lost worker; indexes kReasonNames.
enum class LossReason : std::uint8_t { Crash = 0, Stall = 1, CorruptFrame = 2 };
constexpr const char* kReasonNames[3] = {"crash", "stall", "corrupt-frame"};

/// The injection kind a loss reason corresponds to (consuming the schedule).
InjectKind reason_kind(LossReason r) {
    switch (r) {
    case LossReason::Crash: return InjectKind::WorkerCrash;
    case LossReason::Stall: return InjectKind::WorkerStall;
    case LossReason::CorruptFrame: return InjectKind::FrameCorrupt;
    }
    return InjectKind::WorkerCrash;
}

/// One quarantined fault: (local path index, message). Same bound and merge
/// discipline as the in-process parallel runner.
using WorkerFaults = std::vector<std::pair<std::uint64_t, std::string>>;

std::vector<std::string> merge_fault_log(const std::vector<std::string>& resumed_log,
                                         const std::vector<WorkerFaults>& faults,
                                         const std::vector<std::uint64_t>& accepted,
                                         std::uint64_t base, std::size_t k) {
    std::vector<std::string> log = resumed_log;
    std::vector<std::pair<std::uint64_t, const std::string*>> merged;
    for (std::size_t w = 0; w < k; ++w) {
        for (const auto& [local, msg] : faults[w]) {
            if (local < accepted[w]) merged.emplace_back(base + local * k + w, &msg);
        }
    }
    std::sort(merged.begin(), merged.end());
    for (const auto& [idx, msg] : merged) {
        if (log.size() >= kMaxQuarantinedErrors) break;
        log.push_back("path " + std::to_string(idx) + ": " + *msg);
    }
    return log;
}

std::uint64_t tag_count(const std::vector<std::uint64_t>& tags, PathTerminal t) {
    const auto i = static_cast<std::size_t>(t);
    return tags.size() > i ? tags[i] : 0;
}

std::array<std::size_t, kPathTerminalCount>
terminal_array(const std::vector<std::uint64_t>& tags) {
    std::array<std::size_t, kPathTerminalCount> out{};
    for (std::size_t t = 0; t < tags.size() && t < out.size(); ++t) out[t] = tags[t];
    return out;
}

/// One worker slot (a stream family w of k). The slot survives its process:
/// a replacement inherits recv_local as its start_local.
struct Slot {
    pid_t pid = -1;
    int fd = -1;
    FrameBuffer buf;
    bool alive = false;
    /// Contiguous samples received into the collector from this stream.
    /// Frames must arrive with first_local == recv_local; anything else is
    /// unattributable and treated as a corrupt stream.
    std::uint64_t recv_local = 0;
    std::uint64_t start_local = 0; // current incarnation's first local index
    Clock::time_point last_activity{};
    bool pending_respawn = false;
    Clock::time_point respawn_at{};
    double pending_backoff = 0.0;
    std::uint32_t restarts = 0;
    LossReason last_loss = LossReason::Crash;
    /// recv_local at the slot's first restart: every accepted index beyond
    /// it was reassigned at least once (the deterministic reassigned-paths
    /// accounting).
    std::optional<std::uint64_t> first_restart_from;
};

struct ScheduledInjection {
    FaultInjection inj;
    bool fired = false;
};

/// Everything the two public wrappers need from the core run.
struct CoreResult {
    stat::BernoulliSummary last; // scalar summary (largest bound in curve mode)
    std::vector<std::uint64_t> terminal_tags;
    std::uint64_t total_steps = 0;
    RunStatus status = RunStatus::Converged;
    std::string stop_cause;
    double achieved_half_width = 0.0;
    std::vector<std::string> error_log;
    std::vector<std::uint64_t> accepted;
    std::vector<std::uint64_t> generated;
    telemetry::CollectorStats collector_stats;
    telemetry::SupervisionReport supervision;
    std::uint64_t required = 0;
    std::uint64_t seed = 0;
    double wall_seconds = 0.0;
};

void validate_options(StrategyKind strategy, const SuperviseOptions& options) {
    if (strategy == StrategyKind::Input)
        throw Error("the input strategy cannot be used in supervised runs");
    if (options.processes < 1) throw Error("--processes must be at least 1");
    if (options.model_path.empty())
        throw Error("supervised runs need the model file path: worker "
                    "subprocesses re-load and re-verify the model from disk");
    if (options.sim.coverage)
        throw Error("coverage profiling is not supported with --processes");
    if (options.sim.witness.per_kind > 0)
        throw Error("witness capture is not supported with --processes");
    if (options.sim.trace_lane != nullptr)
        throw Error("execution tracing is not supported with --processes");
    if (options.worker_timeout_seconds <= 0.0)
        throw Error("--worker-timeout must be positive");
}

/// The shared coordinator loop. `curve_summary` is null for scalar runs; in
/// curve mode it receives every accepted sample alongside `last` (which then
/// tracks the largest bound).
CoreResult run_core(const eda::Network& net, const TimedReachability& property,
                    StrategyKind strategy, const stat::StopCriterion& criterion,
                    const CurveOptions* curve, stat::CurveSummary* curve_summary,
                    std::uint64_t seed, const SuperviseOptions& options,
                    telemetry::RunReport* report) {
    validate_options(strategy, options);
    const auto start = Clock::now();
    const std::size_t k = options.processes;
    const RunControlOptions& control = options.sim.control;
    const bool tolerate = control.fault.kind == FaultPolicyKind::Tolerate;
    const std::string strategy_name = to_string(strategy);

    // The SETUP template: property source recovered from the canonical
    // spelling, bounds shipped bit-exact (setup.hpp).
    const double horizon_bound = curve != nullptr ? curve->bounds.back() : property.bound;
    const props::ParsedPattern pattern =
        props::parse_pattern("P( " + property.text + " )");
    WireSetup setup;
    setup.seed = seed;
    setup.model_hash = net.compiled()->content_hash();
    setup.model_path = options.model_path;
    setup.formula_kind = static_cast<std::uint8_t>(property.kind);
    setup.lo = property.lo;
    setup.bound = horizon_bound;
    setup.goal_text = pattern.goal_text;
    setup.hold_text = pattern.hold_text;
    setup.strategy = strategy_name;
    setup.deadlock = static_cast<std::uint8_t>(options.sim.deadlock);
    setup.timelock = static_cast<std::uint8_t>(options.sim.timelock);
    setup.memory = static_cast<std::uint8_t>(options.sim.memory);
    setup.max_steps = options.sim.max_steps;
    setup.tolerate = tolerate ? 1 : 0;
    setup.k = k;
    setup.heartbeat_seconds =
        std::min(0.5, std::max(0.02, options.worker_timeout_seconds / 4.0));

    CoreResult res;
    res.seed = seed;
    stat::SampleCollector collector(k);
    collector.set_metrics(options.sim.metrics);

    std::vector<std::uint64_t>& terminal_tags = res.terminal_tags;
    stat::BernoulliSummary& last = res.last;
    std::uint64_t& total_steps = res.total_steps;
    std::uint64_t base = 0;
    std::vector<std::string> resumed_log;
    if (control.resume != nullptr) {
        const RunCheckpoint& ck = *control.resume;
        ck.validate(control.model_hash, seed, property.text, strategy_name,
                    criterion.name(),
                    curve != nullptr ? curve->bounds : std::vector<double>{});
        base = ck.cursor;
        if (curve_summary != nullptr) curve_summary->restore(ck.cursor, ck.curve_tree);
        last.count = ck.cursor;
        last.successes = ck.successes;
        total_steps = ck.total_steps;
        terminal_tags = ck.terminal_tags;
        resumed_log = ck.error_log;
    }
    setup.base = base;
    RunGovernor governor(control, start);
    LiveRunMetrics live(options.sim.metrics, control.budget);
    journal::Journal* jnl = options.sim.journal;
    if (jnl != nullptr) jnl->begin_workers(k);

    // Supervisor instruments (registered once; null when metrics are off).
    metrics::Registry* reg = options.sim.metrics;
    metrics::Counter* m_restarts[3] = {nullptr, nullptr, nullptr};
    metrics::Counter* m_reassigned = nullptr;
    metrics::Gauge* g_alive = nullptr;
    metrics::Gauge* g_heartbeat_age = nullptr;
    if (reg != nullptr) {
        for (int r = 0; r < 3; ++r) {
            m_restarts[r] = &reg->counter(
                "slimsim_supervisor_restarts_total",
                "Worker restarts performed by the supervision coordinator.",
                metrics::label("reason", kReasonNames[r]));
        }
        m_reassigned = &reg->counter(
            "slimsim_supervisor_reassigned_paths_total",
            "Accepted path indices reassigned to a replacement worker.");
        g_alive = &reg->gauge("slimsim_supervisor_workers_alive",
                              "Worker subprocesses currently alive.");
        g_heartbeat_age = &reg->gauge(
            "slimsim_supervisor_heartbeat_age_seconds",
            "Age of the stalest live worker's last frame (live).");
    }

    // Deterministic fault schedule, sorted by path; injections the resumed
    // cursor already passed can never fire.
    std::vector<ScheduledInjection> schedule;
    schedule.reserve(options.injections.size());
    for (const FaultInjection& inj : options.injections) {
        schedule.push_back({inj, inj.path < base});
    }
    std::sort(schedule.begin(), schedule.end(), [](const auto& a, const auto& b) {
        return a.inj.path < b.inj.path;
    });
    auto owner_of = [&](std::uint64_t path) -> std::size_t {
        return static_cast<std::size_t>((path - base) % k);
    };

    const std::string exe =
        options.worker_exe.empty() ? "/proc/self/exe" : options.worker_exe;
    std::vector<Slot> slots(k);
    std::vector<WorkerFaults> worker_faults(k);
    std::uint64_t spawns = 0;
    std::uint64_t restarts_by_reason[3] = {0, 0, 0};
    std::size_t alive_count = 0;
    bool fatal = false;
    std::string fatal_message;
    bool exhausted = false;
    std::string exhausted_cause;

    auto send_all = [](int fd, const std::string& bytes) -> bool {
        std::size_t off = 0;
        while (off < bytes.size()) {
            const ssize_t n =
                ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
            if (n >= 0) {
                off += static_cast<std::size_t>(n);
                continue;
            }
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                struct pollfd p = {fd, POLLOUT, 0};
                ::poll(&p, 1, 100);
                continue;
            }
            return false;
        }
        return true;
    };

    auto spawn = [&](std::size_t w, std::uint64_t start_local) {
        int fds[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw Error(std::string("supervise: socketpair failed: ") +
                        std::strerror(errno));
        char fd_arg[16];
        std::snprintf(fd_arg, sizeof(fd_arg), "%d", fds[1]);
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            throw Error(std::string("supervise: fork failed: ") + std::strerror(errno));
        }
        if (pid == 0) {
            // Child: async-signal-safe territory only — close the parent
            // end and exec the worker binary.
            ::close(fds[0]);
            char* const argv[] = {const_cast<char*>(exe.c_str()),
                                  const_cast<char*>("--worker-mode"), fd_arg, nullptr};
            ::execv(exe.c_str(), argv);
            _exit(127);
        }
        ::close(fds[1]);
        // Parent end: non-blocking (the poll loop must never block on one
        // worker) and close-on-exec (later-spawned workers must not inherit
        // a sibling's socket, or its EOF would go undetected).
        ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
        ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
        Slot& s = slots[w];
        s.pid = pid;
        s.fd = fds[0];
        s.buf = FrameBuffer{};
        s.alive = true;
        s.recv_local = start_local;
        s.start_local = start_local;
        s.last_activity = Clock::now();
        s.pending_respawn = false;
        ++alive_count;
        ++spawns;
        if (g_alive != nullptr) g_alive->set(static_cast<double>(alive_count));
        WireSetup su = setup;
        su.w = w;
        su.start_local = start_local;
        for (const ScheduledInjection& si : schedule) {
            if (si.fired || si.inj.path < base || owner_of(si.inj.path) != w) continue;
            const std::uint64_t local = (si.inj.path - base - w) / k;
            if (local < start_local) continue;
            su.injections.push_back(
                {static_cast<std::uint8_t>(si.inj.kind), si.inj.path});
        }
        // A send failure here means the worker died before reading SETUP;
        // the poll loop sees the EOF and the restart machinery takes over.
        (void)send_all(s.fd, encode_frame(FrameType::Setup, encode_setup(su)));
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Info, "worker_spawn", "worker subprocess started",
                      {{"worker", static_cast<std::uint64_t>(w)},
                       {"pid", static_cast<std::uint64_t>(pid)},
                       {"start_local", start_local}});
        }
    };

    auto reap = [&](Slot& s) {
        if (s.pid > 0) {
            ::kill(s.pid, SIGKILL);
            int st = 0;
            ::waitpid(s.pid, &st, 0);
            s.pid = -1;
        }
        if (s.fd >= 0) {
            ::close(s.fd);
            s.fd = -1;
        }
        if (s.alive) {
            s.alive = false;
            --alive_count;
            if (g_alive != nullptr) g_alive->set(static_cast<double>(alive_count));
        }
    };

    auto lose = [&](std::size_t w, LossReason reason) {
        Slot& s = slots[w];
        if (!s.alive) return;
        reap(s);
        s.buf = FrameBuffer{};
        s.last_loss = reason;
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Info, "worker_lost",
                      "worker failed and was killed",
                      {{"worker", static_cast<std::uint64_t>(w)},
                       {"reason", std::string(kReasonNames[static_cast<int>(reason)])},
                       {"acknowledged", s.recv_local}});
        }
        // Consume the schedule entry that fired (first unfired injection of
        // this slot with a matching kind): the replacement's SETUP must not
        // re-arm it, or the slot would loop on the same fault forever and
        // the restart count would stop matching the schedule.
        for (ScheduledInjection& si : schedule) {
            if (!si.fired && si.inj.path >= base && owner_of(si.inj.path) == w &&
                si.inj.kind == reason_kind(reason)) {
                si.fired = true;
                break;
            }
        }
        if (s.restarts >= options.worker_retries) {
            if (!exhausted) {
                exhausted = true;
                exhausted_cause =
                    "worker " + std::to_string(w) + " exhausted its " +
                    std::to_string(options.worker_retries) + " restarts (last failure: " +
                    kReasonNames[static_cast<int>(reason)] + ")";
            }
            return;
        }
        const double delay =
            std::min(options.backoff_max_seconds,
                     options.backoff_initial_seconds *
                         static_cast<double>(1ull << std::min<std::uint32_t>(
                                                 s.restarts, 20)));
        s.pending_respawn = true;
        s.pending_backoff = delay;
        s.respawn_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(delay));
    };

    auto respawn = [&](std::size_t w) {
        Slot& s = slots[w];
        s.pending_respawn = false;
        ++s.restarts;
        ++restarts_by_reason[static_cast<int>(s.last_loss)];
        if (m_restarts[static_cast<int>(s.last_loss)] != nullptr)
            m_restarts[static_cast<int>(s.last_loss)]->add(0);
        if (!s.first_restart_from.has_value()) s.first_restart_from = s.recv_local;
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Info, "worker_restart",
                      "replacement worker scheduled",
                      {{"worker", static_cast<std::uint64_t>(w)},
                       {"restart", static_cast<std::uint64_t>(s.restarts)},
                       {"backoff_ms",
                        static_cast<std::uint64_t>(s.pending_backoff * 1000.0)}});
            jnl->emit(journal::Level::Info, "range_reassigned",
                      "unacknowledged path range moved to the replacement",
                      {{"worker", static_cast<std::uint64_t>(w)},
                       {"from_global", base + w + s.recv_local * k},
                       {"stride", static_cast<std::uint64_t>(k)}});
        }
        spawn(w, s.recv_local);
    };

    // Frame handling; returns false when the frame is unattributable (the
    // stream is then treated as corrupt). PayloadReader throws on truncated
    // payloads — the caller maps that to the same corrupt-stream path.
    auto handle_frame = [&](std::size_t w, const Frame& f) -> bool {
        Slot& s = slots[w];
        switch (f.type) {
        case FrameType::Hello: {
            PayloadReader r(f.payload);
            const std::uint32_t version = r.get_u32();
            if (version != kProtocolVersion) {
                fatal = true;
                fatal_message = "worker speaks SLIMWIRE protocol version " +
                                std::to_string(version) + ", this build speaks " +
                                std::to_string(kProtocolVersion);
            }
            return true;
        }
        case FrameType::Heartbeat: return true;
        case FrameType::Fatal: {
            PayloadReader r(f.payload);
            fatal = true;
            fatal_message = r.get_string();
            return true;
        }
        case FrameType::Samples: {
            PayloadReader r(f.payload);
            const std::uint64_t first = r.get_u64();
            const std::uint32_t count = r.get_u32();
            if (first != s.recv_local) return false;
            for (std::uint32_t i = 0; i < count; ++i) {
                const bool value = r.get_u8() != 0;
                const std::uint8_t tag = r.get_u8();
                const double time = r.get_f64();
                const std::uint64_t steps = r.get_u64();
                std::string err = r.get_string();
                if (tag == static_cast<std::uint8_t>(PathTerminal::Error) &&
                    !err.empty()) {
                    live.add_quarantined();
                    if (jnl != nullptr) {
                        jnl->worker(w).emit(journal::Level::Debug, s.recv_local + i,
                                            "quarantine", err);
                    }
                    if (worker_faults[w].size() < kMaxQuarantinedErrors) {
                        worker_faults[w].emplace_back(s.recv_local + i,
                                                      std::move(err));
                    }
                }
                collector.push(w, stat::TaggedSample{value, tag, time, steps});
            }
            s.recv_local += count;
            return true;
        }
        default: return false;
        }
    };

    auto kill_all = [&] {
        for (Slot& s : slots) reap(s);
    };

    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    res.required = required;
    auto accepted_count = [&]() -> std::uint64_t {
        return curve_summary != nullptr ? curve_summary->count() : last.count;
    };
    auto criterion_met = [&]() -> bool {
        return curve_summary != nullptr ? criterion.should_stop_curve(*curve_summary)
                                        : criterion.should_stop(last);
    };
    std::uint64_t next_mark = 1;
    while (next_mark <= base) next_mark *= 2;
    auto save_checkpoint = [&] {
        const auto accepted_now = collector.consumed_per_worker();
        const std::vector<std::string> log =
            merge_fault_log(resumed_log, worker_faults, accepted_now, base, k);
        const std::size_t bytes =
            make_run_checkpoint(control, seed, property.text, strategy_name,
                                criterion.name(), accepted_count(), last.successes,
                                total_steps, terminal_array(terminal_tags), log,
                                curve != nullptr ? curve->bounds
                                                 : std::vector<double>{},
                                curve_summary != nullptr
                                    ? curve_summary->tree()
                                    : std::vector<std::uint64_t>{})
                .save(control.checkpoint_path);
        live.add_checkpoint(bytes);
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Debug, "checkpoint", "checkpoint written",
                      {{"samples", accepted_count()},
                       {"bytes", static_cast<std::uint64_t>(bytes)}});
        }
    };
    std::uint64_t next_checkpoint =
        control.checkpoint_every > 0 ? accepted_count() + control.checkpoint_every : 0;
    const ProgressFn& progress = options.sim.progress.callback;
    ProgressOptions progress_options = options.sim.progress;
    progress_options.budget_max_seconds = control.budget.max_wall_seconds;
    progress_options.budget_max_samples = control.budget.max_samples;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(Clock::now() - start).count();
    };

    bool degraded_stop = false;
    try {
        for (std::size_t w = 0; w < k; ++w) spawn(w, 0);

        std::vector<struct pollfd> pfds;
        std::vector<std::size_t> pfd_slot;
        char chunk[65536];
        for (;;) {
            // Respawns whose backoff expired come first, so a freshly
            // reassigned range starts generating before this iteration's
            // drain — but never after a stop decision (the loop exits
            // before reaching here once a stop latches).
            const auto now_top = Clock::now();
            for (std::size_t w = 0; w < k; ++w) {
                if (slots[w].pending_respawn && now_top >= slots[w].respawn_at)
                    respawn(w);
            }

            pfds.clear();
            pfd_slot.clear();
            for (std::size_t w = 0; w < k; ++w) {
                if (!slots[w].alive) continue;
                pfds.push_back({slots[w].fd, POLLIN, 0});
                pfd_slot.push_back(w);
            }
            ::poll(pfds.empty() ? nullptr : pfds.data(),
                   static_cast<nfds_t>(pfds.size()), 10);

            for (std::size_t i = 0; i < pfds.size(); ++i) {
                const std::size_t w = pfd_slot[i];
                Slot& s = slots[w];
                if (!s.alive) continue; // lost earlier in this iteration
                if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
                bool eof = false;
                for (;;) {
                    const ssize_t n = ::recv(s.fd, chunk, sizeof(chunk), 0);
                    if (n > 0) {
                        s.buf.feed(chunk, static_cast<std::size_t>(n));
                        s.last_activity = Clock::now();
                        if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
                        continue;
                    }
                    if (n == 0) {
                        eof = true;
                        break;
                    }
                    if (errno == EINTR) continue;
                    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                    eof = true; // read error: treat as a crash
                    break;
                }
                Frame frame;
                for (;;) {
                    const FrameBuffer::Status st = s.buf.next(frame);
                    if (st == FrameBuffer::Status::NeedMore) break;
                    if (st == FrameBuffer::Status::Corrupt) {
                        lose(w, LossReason::CorruptFrame);
                        break;
                    }
                    bool ok = false;
                    try {
                        ok = handle_frame(w, frame);
                    } catch (const std::exception&) {
                        ok = false; // truncated payload behind a valid checksum
                    }
                    if (!ok) {
                        lose(w, LossReason::CorruptFrame);
                        break;
                    }
                    if (fatal) break;
                }
                if (fatal) break;
                if (eof && s.alive) lose(w, LossReason::Crash);
            }
            if (fatal) {
                // A worker hit a deterministic error (FailFast path fault,
                // model mismatch): restarting cannot fix it — mirror the
                // in-process runners and abort the whole run.
                throw Error(fatal_message);
            }

            const auto now = Clock::now();
            double stalest = 0.0;
            for (std::size_t w = 0; w < k; ++w) {
                Slot& s = slots[w];
                if (!s.alive) continue;
                const double age =
                    std::chrono::duration<double>(now - s.last_activity).count();
                stalest = std::max(stalest, age);
                if (age > options.worker_timeout_seconds) lose(w, LossReason::Stall);
            }
            if (g_heartbeat_age != nullptr) g_heartbeat_age->set(stalest);

            const std::size_t consumed = collector.drain_ordered(
                last, curve_summary, &terminal_tags,
                [&] {
                    // Sample-granular trajectory marks at power-of-two
                    // accepted counts — identical to the in-process runners,
                    // so the trajectory survives byte-diffing against them.
                    if (accepted_count() == next_mark) {
                        if (report != nullptr) {
                            report->stop_trajectory.push_back(
                                {accepted_count(), required, last.successes});
                        }
                        if (jnl != nullptr) {
                            jnl->emit(journal::Level::Trace, "mark",
                                      "stop-criterion trajectory mark",
                                      {{"samples", accepted_count()},
                                       {"successes", last.successes}});
                        }
                        next_mark *= 2;
                    }
                    return criterion_met() ||
                           governor.should_stop(accepted_count(), total_steps,
                                                tag_count(terminal_tags,
                                                          PathTerminal::Error));
                },
                &total_steps);
            if (consumed > 0) {
                live.add_samples(consumed);
                live.add_round();
            }
            if ((progress || live) && consumed > 0) {
                const auto pnow = Clock::now();
                if (std::chrono::duration<double>(pnow - last_progress).count() >=
                    options.sim.progress.min_interval_seconds) {
                    const ProgressSnapshot snap = make_progress_snapshot(
                        accepted_count(), last.successes, required, elapsed(),
                        progress_options);
                    live.on_snapshot(snap);
                    if (progress) progress(snap);
                    last_progress = pnow;
                }
            }
            if (consumed > 0 && criterion_met()) break;
            if (governor.should_stop(accepted_count(), total_steps,
                                     tag_count(terminal_tags, PathTerminal::Error)))
                break;
            if (exhausted && consumed == 0) {
                // The dead slot's stream can never advance again, so global
                // path order is blocked for good once its buffer is dry:
                // degrade with the partial result (never an exception).
                degraded_stop = true;
                break;
            }
            if (next_checkpoint != 0 && accepted_count() >= next_checkpoint) {
                save_checkpoint();
                while (next_checkpoint <= accepted_count())
                    next_checkpoint += control.checkpoint_every;
            }
        }
    } catch (...) {
        kill_all();
        throw;
    }
    kill_all();

    if (progress || live) {
        const ProgressSnapshot snap = make_progress_snapshot(
            accepted_count(), last.successes, required, elapsed(), progress_options);
        live.on_snapshot(snap);
        if (progress) progress(snap);
    }

    res.accepted = collector.consumed_per_worker();
    res.generated.resize(k);
    for (std::size_t w = 0; w < k; ++w) res.generated[w] = slots[w].recv_local;
    if (jnl != nullptr) {
        jnl->merge_workers(res.accepted, base);
    }
    if (degraded_stop) {
        res.status = RunStatus::Degraded;
        res.stop_cause = exhausted_cause;
    } else {
        res.status = governor.status();
        res.stop_cause = governor.stop_cause();
    }
    if (jnl != nullptr) {
        jnl->emit(journal::Level::Info, "stop", res.stop_cause,
                  {{"status", std::string(to_string(res.status))},
                   {"samples", accepted_count()}});
    }
    res.error_log = merge_fault_log(resumed_log, worker_faults, res.accepted, base, k);
    res.collector_stats = collector.stats();
    if (!control.checkpoint_path.empty()) save_checkpoint();

    telemetry::SupervisionReport& sup = res.supervision;
    sup.enabled = true;
    sup.processes = k;
    sup.spawns = spawns;
    sup.restarts = restarts_by_reason[0] + restarts_by_reason[1] + restarts_by_reason[2];
    sup.injected_faults = options.injections.size();
    for (int r = 0; r < 3; ++r) {
        sup.restarts_by_reason.emplace_back(kReasonNames[r], restarts_by_reason[r]);
    }
    sup.worker_timeout_seconds = options.worker_timeout_seconds;
    sup.worker_retries = options.worker_retries;
    std::uint64_t reassigned = 0;
    for (std::size_t w = 0; w < k; ++w) {
        if (slots[w].first_restart_from.has_value() &&
            res.accepted[w] > *slots[w].first_restart_from) {
            reassigned += res.accepted[w] - *slots[w].first_restart_from;
        }
    }
    sup.reassigned_paths = reassigned;
    if (m_reassigned != nullptr && reassigned > 0) m_reassigned->add(0, reassigned);

    res.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    return res;
}

/// Report fields shared by the scalar and curve wrappers.
void fill_report_common(telemetry::RunReport* report, const CoreResult& core,
                        const std::string& strategy_name,
                        const stat::StopCriterion& criterion, std::size_t k) {
    if (report == nullptr) return;
    if (report->stop_trajectory.empty() ||
        report->stop_trajectory.back().samples != core.last.count) {
        report->stop_trajectory.push_back(
            {core.last.count, core.required, core.last.successes});
    }
    report->samples = core.last.count;
    report->successes = core.last.successes;
    report->strategy = strategy_name;
    report->criterion = criterion.name();
    report->seed = core.seed;
    report->workers = k;
    report->terminals = terminal_histogram(terminal_array(core.terminal_tags));
    report->collector = core.collector_stats;
    report->worker_stats.clear();
    for (std::size_t w = 0; w < k; ++w) {
        report->worker_stats.push_back(
            telemetry::WorkerStats{w, w, core.generated[w], core.accepted[w]});
    }
    report->supervision = core.supervision;
}

} // namespace

EstimationResult estimate_supervised(const eda::Network& net,
                                     const TimedReachability& property,
                                     StrategyKind strategy,
                                     const stat::StopCriterion& criterion,
                                     std::uint64_t seed, const SuperviseOptions& options,
                                     telemetry::RunReport* report) {
    CoreResult core = run_core(net, property, strategy, criterion, nullptr, nullptr,
                               seed, options, report);
    EstimationResult result;
    result.estimate = core.last.mean();
    result.samples = core.last.count;
    result.successes = core.last.successes;
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    result.terminals = terminal_array(core.terminal_tags);
    result.status = core.status;
    result.stop_cause = core.stop_cause;
    result.achieved_half_width = criterion.achieved_half_width(core.last);
    result.path_errors = tag_count(core.terminal_tags, PathTerminal::Error);
    result.error_log = core.error_log;
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds = core.wall_seconds;
    if (report != nullptr) {
        report->value = result.estimate;
        fill_report_common(report, core, result.strategy, criterion, options.processes);
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    return result;
}

CurveResult estimate_curve_supervised(const eda::Network& net,
                                      const TimedReachability& property,
                                      StrategyKind strategy,
                                      const stat::StopCriterion& criterion,
                                      const CurveOptions& curve, std::uint64_t seed,
                                      const SuperviseOptions& options,
                                      telemetry::RunReport* report) {
    validate_curve_request(property, curve);
    stat::CurveSummary summary(curve.bounds);
    CoreResult core = run_core(net, property, strategy, criterion, &curve, &summary,
                               seed, options, report);
    CurveResult result;
    result.points = curve_points(summary);
    result.samples = summary.count();
    result.band = stat::to_string(curve.band);
    result.simultaneous_eps = stat::simultaneous_half_width(
        curve.band, curve.delta, summary.size(), result.samples);
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    result.terminals = terminal_array(core.terminal_tags);
    result.status = core.status;
    result.stop_cause = core.stop_cause;
    result.achieved_half_width = result.simultaneous_eps;
    result.path_errors = tag_count(core.terminal_tags, PathTerminal::Error);
    result.error_log = core.error_log;
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds = core.wall_seconds;
    if (report != nullptr) {
        report->value = result.points.back().estimate;
        fill_report_common(report, core, result.strategy, criterion, options.processes);
        report->curve = {result.band, result.simultaneous_eps, result.points};
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    return result;
}

} // namespace slimsim::sim::supervise
