// Worker-subprocess side of SLIMWIRE v1 (docs/supervision.md).
//
// A worker is a fresh exec of the slimsim binary: it owns no coordinator
// state, loads the model from disk, verifies its content hash against the
// SETUP frame, and then streams path outcomes for its slot's index family
// (global path base + w + local*k, simulated with Rng(seed).split(global))
// until the coordinator kills it. Deterministic fault injections trigger
// *after* all preceding valid samples are flushed, so the restart point —
// and with it the whole failure schedule's observable effect — is exact.
#include "sim/supervise/supervise.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <unistd.h>

#include "eda/network.hpp"
#include "sim/path_generator.hpp"
#include "sim/supervise/setup.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::sim::supervise {

namespace {

/// An in-flight SAMPLES frame: first_local + count header, then per sample
/// u8 satisfied, u8 terminal tag, f64 end time, u64 steps, string error
/// message (empty unless the tag is PathTerminal::Error).
struct Batch {
    std::uint64_t first_local = 0;
    std::uint32_t count = 0;
    std::string samples;

    [[nodiscard]] std::string encode() const {
        std::string p;
        put_u64(p, first_local);
        put_u32(p, count);
        p += samples;
        return p;
    }
};

} // namespace

int run_worker_mode(int fd) {
    // The coordinator owns interruption: a terminal ^C reaches the whole
    // foreground process group, and the coordinator must stay alive to
    // drain and kill its workers — workers ignore SIGINT and die by
    // SIGKILL (or exit when the socket closes under them).
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);
    try {
        {
            std::string hello;
            put_u32(hello, kProtocolVersion);
            put_u64(hello, static_cast<std::uint64_t>(::getpid()));
            if (!send_bytes(fd, encode_frame(FrameType::Hello, hello))) return 1;
        }
        const Frame first = read_frame_blocking(fd);
        if (first.type != FrameType::Setup)
            throw Error("SLIMWIRE: expected SETUP, got frame type " +
                        std::to_string(static_cast<std::uint32_t>(first.type)));
        WireSetup setup = decode_setup(first.payload);
        if (setup.k == 0 || setup.w >= setup.k)
            throw Error("SLIMWIRE: SETUP has an invalid worker slot");
        std::sort(setup.injections.begin(), setup.injections.end(),
                  [](const auto& a, const auto& b) { return a.path < b.path; });

        eda::Network net = eda::build_network_from_file(setup.model_path);
        if (setup.model_hash != 0 &&
            net.compiled()->content_hash() != setup.model_hash) {
            throw Error("worker model `" + setup.model_path +
                        "` does not match the coordinator's model "
                        "(content hash mismatch)");
        }

        PathFormula formula;
        switch (static_cast<FormulaKind>(setup.formula_kind)) {
        case FormulaKind::Reach:
            formula = make_reachability_interval(net.model(), setup.goal_text,
                                                 setup.lo, setup.bound);
            break;
        case FormulaKind::Until:
            formula = make_until(net.model(), setup.hold_text, setup.goal_text,
                                 setup.lo, setup.bound);
            break;
        case FormulaKind::Globally:
            formula = make_globally(net.model(), setup.goal_text, setup.bound);
            break;
        default: throw Error("SLIMWIRE: SETUP has an unknown formula kind");
        }

        const auto kind = strategy_from_string(setup.strategy);
        if (!kind.has_value() || *kind == StrategyKind::Input)
            throw Error("SLIMWIRE: SETUP has an unusable strategy `" +
                        setup.strategy + "`");
        const auto strat = make_strategy(*kind);

        SimOptions sim;
        sim.deadlock = static_cast<StuckPolicy>(setup.deadlock);
        sim.timelock = static_cast<StuckPolicy>(setup.timelock);
        sim.memory = static_cast<MemoryPolicy>(setup.memory);
        sim.max_steps = setup.max_steps;
        const PathGenerator gen(net, formula, *strat, sim);

        const Rng master(setup.seed);
        const bool tolerate = setup.tolerate != 0;
        const std::uint32_t batch_size = std::max<std::uint32_t>(1, setup.batch);
        auto inj = setup.injections.cbegin();
        const auto inj_end = setup.injections.cend();

        Batch batch;
        batch.first_local = setup.start_local;
        auto last_send = std::chrono::steady_clock::now();
        // Returns false when the coordinator is gone (exit quietly then).
        auto flush = [&]() -> bool {
            if (batch.count == 0) {
                std::string hb;
                put_u64(hb, batch.first_local);
                return send_bytes(fd, encode_frame(FrameType::Heartbeat, hb));
            }
            const bool ok =
                send_bytes(fd, encode_frame(FrameType::Samples, batch.encode()));
            batch.first_local += batch.count;
            batch.count = 0;
            batch.samples.clear();
            return ok;
        };

        for (std::uint64_t local = setup.start_local;; ++local) {
            const std::uint64_t global = setup.base + setup.w + local * setup.k;
            while (inj != inj_end && inj->path < global) ++inj;
            const bool fire = inj != inj_end && inj->path == global;
            const auto fault =
                fire ? static_cast<InjectKind>(inj->kind) : InjectKind{};
            if (fire) {
                // Every valid sample before the fault point is acknowledged
                // first, so the replacement's start_local is exactly this
                // path's local index — deterministically.
                if (!flush()) return 0;
                if (fault == InjectKind::WorkerCrash) _exit(86);
                if (fault == InjectKind::WorkerStall) {
                    for (;;) ::pause(); // alive but silent: heartbeat expires
                }
            }

            Rng rng = master.split(global);
            PathOutcome out;
            std::string err;
            if (tolerate) {
                try {
                    out = gen.run(rng);
                } catch (const std::exception& e) {
                    out = PathOutcome{false, PathTerminal::Error, 0.0, 0};
                    err = e.what();
                }
            } else {
                out = gen.run(rng); // FailFast: a throw becomes FATAL below
            }
            put_u8(batch.samples, out.satisfied ? 1 : 0);
            put_u8(batch.samples, static_cast<std::uint8_t>(out.terminal));
            put_f64(batch.samples, out.end_time);
            put_u64(batch.samples, static_cast<std::uint64_t>(out.steps));
            put_string(batch.samples, err);
            ++batch.count;

            if (fire && fault == InjectKind::FrameCorrupt) {
                // The single sample at the fault path travels in a frame
                // whose checksum is flipped: the coordinator must discard
                // it and regenerate the path in a replacement worker.
                (void)send_bytes(
                    fd, encode_frame_corrupt(FrameType::Samples, batch.encode()));
                _exit(88);
            }

            const auto now = std::chrono::steady_clock::now();
            if (batch.count >= batch_size ||
                std::chrono::duration<double>(now - last_send).count() >=
                    setup.heartbeat_seconds) {
                if (!flush()) return 0;
                last_send = now;
            }
        }
    } catch (const std::exception& e) {
        // Deterministic failure (bad model, formula error, Zeno guard under
        // FailFast): report it so the coordinator aborts the run instead of
        // burning retries on a fault a restart cannot fix.
        std::string p;
        put_string(p, e.what());
        (void)send_bytes(fd, encode_frame(FrameType::Fatal, p));
        return 1;
    }
}

std::string to_string(InjectKind kind) {
    switch (kind) {
    case InjectKind::WorkerCrash: return "worker-crash";
    case InjectKind::WorkerStall: return "worker-stall";
    case InjectKind::FrameCorrupt: return "frame-corrupt";
    }
    return "unknown";
}

FaultInjection parse_injection(const std::string& spec) {
    const std::size_t at = spec.find('@');
    if (at == std::string::npos) {
        throw Error("--inject: expected KIND@PATH (worker-crash@N, "
                    "worker-stall@N or frame-corrupt@N), got `" + spec + "`");
    }
    const std::string kind = spec.substr(0, at);
    FaultInjection inj;
    if (kind == "worker-crash") {
        inj.kind = InjectKind::WorkerCrash;
    } else if (kind == "worker-stall") {
        inj.kind = InjectKind::WorkerStall;
    } else if (kind == "frame-corrupt") {
        inj.kind = InjectKind::FrameCorrupt;
    } else {
        throw Error("--inject: unknown fault kind `" + kind +
                    "` (worker-crash, worker-stall or frame-corrupt)");
    }
    const std::string digits = spec.substr(at + 1);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
        throw Error("--inject: `" + spec + "` needs a numeric path index after @");
    }
    inj.path = std::stoull(digits);
    return inj;
}

} // namespace slimsim::sim::supervise
