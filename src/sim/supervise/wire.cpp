#include "sim/supervise/wire.hpp"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>

#include "sim/run_control.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::sim::supervise {

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_f64(std::string& out, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

void put_string(std::string& out, std::string_view s) {
    put_u64(out, s.size());
    out.append(s);
}

void PayloadReader::need(std::uint64_t n) const {
    if (pos_ > bytes_.size() || n > bytes_.size() - pos_)
        throw Error("malformed SLIMWIRE frame: payload truncated");
}

std::uint8_t PayloadReader::get_u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t PayloadReader::get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t PayloadReader::get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

double PayloadReader::get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string PayloadReader::get_string() {
    const std::uint64_t n = get_u64();
    need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
}

std::string encode_frame(FrameType type, std::string_view payload) {
    std::string out;
    const std::uint64_t len = 4 + payload.size() + 8;
    out.reserve(4 + len);
    put_u32(out, static_cast<std::uint32_t>(len));
    put_u32(out, static_cast<std::uint32_t>(type));
    out.append(payload);
    put_u64(out, fnv1a64(out.data() + 4, out.size() - 4));
    return out;
}

std::string encode_frame_corrupt(FrameType type, std::string_view payload) {
    std::string out = encode_frame(type, payload);
    out.back() = static_cast<char>(static_cast<unsigned char>(out.back()) ^ 0xff);
    return out;
}

FrameBuffer::Status FrameBuffer::next(Frame& out) {
    if (poisoned_) return Status::Corrupt;
    if (data_.size() < 4) return Status::NeedMore;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[i])) << (8 * i);
    if (len < 12 || len > kMaxFrameBytes) {
        poisoned_ = true;
        return Status::Corrupt;
    }
    if (data_.size() < 4u + len) return Status::NeedMore;
    const std::uint64_t stored =
        [&] {
            std::uint64_t v = 0;
            const std::size_t at = 4u + len - 8;
            for (int i = 0; i < 8; ++i)
                v |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(data_[at + i]))
                     << (8 * i);
            return v;
        }();
    if (fnv1a64(data_.data() + 4, len - 8) != stored) {
        poisoned_ = true;
        return Status::Corrupt;
    }
    std::uint32_t type = 0;
    for (int i = 0; i < 4; ++i)
        type |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[4 + i]))
                << (8 * i);
    out.type = static_cast<FrameType>(type);
    out.payload.assign(data_, 8, len - 12);
    data_.erase(0, 4u + len);
    return Status::Ok;
}

bool send_bytes(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

Frame read_frame_blocking(int fd) {
    FrameBuffer buf;
    Frame frame;
    char chunk[4096];
    for (;;) {
        switch (buf.next(frame)) {
        case FrameBuffer::Status::Ok: return frame;
        case FrameBuffer::Status::Corrupt:
            throw Error("SLIMWIRE: corrupt frame from peer");
        case FrameBuffer::Status::NeedMore: break;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n == 0) throw Error("SLIMWIRE: peer closed the connection");
        if (n < 0) {
            if (errno == EINTR) continue;
            throw Error(std::string("SLIMWIRE: read failed: ") + std::strerror(errno));
        }
        buf.feed(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace slimsim::sim::supervise
