// Process-isolated worker supervision (docs/supervision.md).
//
// estimate_supervised() runs an estimation campaign across N worker
// *subprocesses* instead of threads: each worker is a re-exec of this
// binary in --worker-mode, speaking SLIMWIRE v1 (sim/supervise/wire.hpp)
// over a socketpair. Worker slot w of k owns the global path indices
// base + w, base + w + k, ... and simulates path j with the relocatable
// per-path RNG stream Rng(seed).split(j) — so when a worker crashes,
// stalls past its heartbeat deadline, or sends a corrupt frame, the
// coordinator kills it and hands the *unacknowledged* tail of its index
// set to a replacement that regenerates exactly the same samples. Samples
// are merged through SampleCollector::drain_ordered in global path order,
// so the final estimate, terminal histogram and report are byte-identical
// to a single-process run at every (seed, process count, crash schedule).
//
// Failure handling is bounded: each slot gets worker_retries restarts with
// exponential backoff; when a slot exhausts its retries the run stops with
// RunStatus::Degraded and the partial result — never an exception. A
// worker reporting a *deterministic* error (model failure under
// FaultPolicy::FailFast) aborts the whole run like the in-process runners.
//
// The deterministic fault-injection surface (--inject / FaultInjection)
// exists so all of the above is testable in CI: injections key on global
// path indices, so the failure schedule — and therefore the restart count,
// journal events and supervisor metrics — is exact, not probabilistic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/runner.hpp"

namespace slimsim::sim::supervise {

/// A deterministic fault to inject into the worker owning the given path.
enum class InjectKind : std::uint8_t {
    WorkerCrash, // _exit before simulating the path
    WorkerStall, // stop sending frames before the path (heartbeat expires)
    FrameCorrupt, // send the path's sample in a checksum-corrupted frame
};

[[nodiscard]] std::string to_string(InjectKind kind);

struct FaultInjection {
    InjectKind kind = InjectKind::WorkerCrash;
    /// Global path index the fault triggers at (the worker owning this path
    /// fails there; the replacement regenerates it).
    std::uint64_t path = 0;
};

/// Parses "worker-crash@PATH" | "worker-stall@PATH" | "frame-corrupt@PATH";
/// throws Error naming --inject on malformed specs.
[[nodiscard]] FaultInjection parse_injection(const std::string& spec);

struct SuperviseOptions {
    /// Worker subprocesses (>= 1). Results are byte-identical across
    /// process counts: supervised runs always use per-path RNG streams.
    std::size_t processes = 1;
    /// A worker with no frame activity for this long is declared stalled,
    /// killed and restarted. Must exceed the longest single-path wall time.
    double worker_timeout_seconds = 10.0;
    /// Restarts allowed per worker slot before the run degrades.
    std::size_t worker_retries = 3;
    /// Restart backoff: initial delay, doubled per restart of the slot,
    /// capped at the max.
    double backoff_initial_seconds = 0.05;
    double backoff_max_seconds = 2.0;
    /// Executable to re-exec as --worker-mode; empty = /proc/self/exe.
    std::string worker_exe;
    /// SLIM model file the workers load; its CompiledModel::content_hash()
    /// is verified against the coordinator's before any path is simulated.
    std::string model_path;
    /// Deterministic fault schedule (tests/CI chaos job).
    std::vector<FaultInjection> injections;
    /// Simulation + hardening options, exactly as for the in-process
    /// runners. Witness capture, coverage and tracing are not supported in
    /// supervised mode (the CLI and API reject those combinations).
    SimOptions sim;
};

/// Scalar supervised estimation; mirrors estimate_parallel with
/// deterministic per-path streams.
[[nodiscard]] EstimationResult estimate_supervised(const eda::Network& net,
                                                   const TimedReachability& property,
                                                   StrategyKind strategy,
                                                   const stat::StopCriterion& criterion,
                                                   std::uint64_t seed,
                                                   const SuperviseOptions& options,
                                                   telemetry::RunReport* report = nullptr);

/// Multi-bound curve estimation across worker subprocesses; mirrors
/// estimate_curve_parallel.
[[nodiscard]] CurveResult estimate_curve_supervised(const eda::Network& net,
                                                    const TimedReachability& property,
                                                    StrategyKind strategy,
                                                    const stat::StopCriterion& criterion,
                                                    const CurveOptions& curve,
                                                    std::uint64_t seed,
                                                    const SuperviseOptions& options,
                                                    telemetry::RunReport* report = nullptr);

/// Worker-subprocess entry point: speaks SLIMWIRE v1 on `fd` (HELLO, then
/// SETUP, then an unbounded stream of SAMPLES/HEARTBEAT frames until
/// killed). The CLI dispatches here when invoked as `--worker-mode FD`
/// before parsing anything else. Returns the process exit code.
int run_worker_mode(int fd);

} // namespace slimsim::sim::supervise
