#include "sim/strategy.hpp"

#include <algorithm>
#include <array>
#include <limits>

namespace slimsim::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Uniform pick among candidates enabled at delay t (equiprobability of
/// under-specified choice). Returns -1 if none is enabled at t.
int pick_enabled_at(std::span<const eda::Candidate> candidates, double t, Rng& rng) {
    std::vector<int> enabled;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].enabled.contains(t)) enabled.push_back(static_cast<int>(i));
    }
    if (enabled.empty()) return -1;
    return enabled[rng.uniform_index(enabled.size())];
}

class AsapStrategy final : public Strategy {
public:
    std::string name() const override { return "asap"; }

    std::optional<ScheduledChoice> choose_impl(const eda::Network&, const eda::NetworkState&,
                                          std::span<const eda::Candidate> candidates,
                                          double /*horizon*/, Rng& rng) override {
        double first = kInf;
        for (const auto& c : candidates) {
            if (const auto e = c.enabled.earliest()) first = std::min(first, *e);
        }
        if (first == kInf) return std::nullopt;
        const int idx = pick_enabled_at(candidates, first, rng);
        SLIMSIM_ASSERT(idx >= 0);
        return ScheduledChoice{first, idx};
    }
};

class ProgressiveStrategy final : public Strategy {
public:
    std::string name() const override { return "progressive"; }

    std::optional<ScheduledChoice> choose_impl(const eda::Network&, const eda::NetworkState&,
                                          std::span<const eda::Candidate> candidates,
                                          double /*horizon*/, Rng& rng) override {
        IntervalSet all;
        for (const auto& c : candidates) all = all.unite(c.enabled);
        if (all.empty()) return std::nullopt;
        const double t = all.sample_uniform(rng);
        const int idx = pick_enabled_at(candidates, t, rng);
        SLIMSIM_ASSERT(idx >= 0);
        return ScheduledChoice{t, idx};
    }
};

class LocalStrategy final : public Strategy {
public:
    std::string name() const override { return "local"; }

    std::optional<ScheduledChoice> choose_impl(const eda::Network&, const eda::NetworkState&,
                                          std::span<const eda::Candidate> candidates,
                                          double horizon, Rng& rng) override {
        if (candidates.empty() && horizon <= 0.0) return std::nullopt;
        const double t = rng.uniform(0.0, horizon);
        const int idx = pick_enabled_at(candidates, t, rng);
        if (idx < 0 && t <= 0.0) {
            // Degenerate: no delay possible and nothing enabled at 0.
            return candidates.empty() ? std::nullopt
                                      : std::optional(ScheduledChoice{0.0, -1});
        }
        return ScheduledChoice{t, idx};
    }
};

class MaxTimeStrategy final : public Strategy {
public:
    std::string name() const override { return "maxtime"; }

    std::optional<ScheduledChoice> choose_impl(const eda::Network&, const eda::NetworkState&,
                                          std::span<const eda::Candidate> candidates,
                                          double horizon, Rng& rng) override {
        const double t = horizon;
        const int idx = pick_enabled_at(candidates, t, rng);
        if (idx < 0 && t <= 0.0) return std::nullopt; // actionlock at the horizon
        return ScheduledChoice{t, idx};
    }
};

class InputStrategy final : public Strategy {
public:
    explicit InputStrategy(InputCallback cb) : cb_(std::move(cb)) {}

    std::string name() const override { return "input"; }

    std::optional<ScheduledChoice> choose_impl(const eda::Network& net,
                                          const eda::NetworkState& state,
                                          std::span<const eda::Candidate> candidates,
                                          double horizon, Rng&) override {
        return cb_(net, state, candidates, horizon);
    }

private:
    InputCallback cb_;
};

} // namespace

std::string to_string(StrategyKind k) {
    switch (k) {
    case StrategyKind::Asap: return "asap";
    case StrategyKind::Progressive: return "progressive";
    case StrategyKind::Local: return "local";
    case StrategyKind::MaxTime: return "maxtime";
    case StrategyKind::Input: return "input";
    }
    return "?";
}

std::optional<StrategyKind> strategy_from_string(std::string_view name) {
    if (name == "asap") return StrategyKind::Asap;
    if (name == "progressive") return StrategyKind::Progressive;
    if (name == "local") return StrategyKind::Local;
    if (name == "maxtime") return StrategyKind::MaxTime;
    if (name == "input") return StrategyKind::Input;
    return std::nullopt;
}

std::span<const StrategyKind> automated_strategies() {
    static constexpr std::array<StrategyKind, 4> kAll = {
        StrategyKind::Asap, StrategyKind::Progressive, StrategyKind::Local,
        StrategyKind::MaxTime};
    return kAll;
}

std::unique_ptr<Strategy> make_strategy(StrategyKind kind) {
    switch (kind) {
    case StrategyKind::Asap: return std::make_unique<AsapStrategy>();
    case StrategyKind::Progressive: return std::make_unique<ProgressiveStrategy>();
    case StrategyKind::Local: return std::make_unique<LocalStrategy>();
    case StrategyKind::MaxTime: return std::make_unique<MaxTimeStrategy>();
    case StrategyKind::Input:
        throw Error("the input strategy needs a callback; use make_input_strategy");
    }
    throw Error("unknown strategy");
}

std::unique_ptr<Strategy> make_input_strategy(InputCallback callback) {
    if (!callback) throw Error("input strategy callback must not be empty");
    return std::make_unique<InputStrategy>(std::move(callback));
}

} // namespace slimsim::sim
