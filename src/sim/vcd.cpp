#include "sim/vcd.hpp"

#include <cmath>
#include <ostream>
#include <string>
#include <vector>

namespace slimsim::sim {

namespace {

/// Compact VCD identifier codes: printable ASCII 33..126, base-94.
std::string vcd_id(std::size_t index) {
    std::string id;
    do {
        id += static_cast<char>(33 + index % 94);
        index /= 94;
    } while (index != 0);
    return id;
}

std::string vcd_name(std::string name) {
    for (char& c : name) {
        if (c == '.' || c == '@' || c == '#' || c == ' ') c = '_';
    }
    return name;
}

std::string binary64(std::int64_t value) {
    const auto u = static_cast<std::uint64_t>(value);
    std::string bits = "b";
    bool leading = true;
    for (int i = 63; i >= 0; --i) {
        const bool bit = ((u >> i) & 1u) != 0;
        if (bit) leading = false;
        if (!leading || i == 0) bits += bit ? '1' : '0';
    }
    return bits;
}

class VcdWriter {
public:
    VcdWriter(const eda::Network& net, std::ostream& out, const VcdOptions& options)
        : net_(net), out_(out), options_(options) {}

    void header() {
        const auto& m = net_.model();
        out_ << "$comment slimsim path dump $end\n";
        out_ << "$timescale 1 ms $end\n"; // ticks scaled by options_.tick_seconds
        out_ << "$scope module model $end\n";
        std::size_t next = 0;
        for (VarId v = 0; v < m.vars.size(); ++v) {
            const std::string id = vcd_id(next++);
            var_ids_.push_back(id);
            const std::string name = vcd_name(m.vars[v].full_name);
            switch (m.vars[v].type.kind) {
            case TypeKind::Bool:
                out_ << "$var wire 1 " << id << ' ' << name << " $end\n";
                break;
            case TypeKind::Int:
                out_ << "$var integer 64 " << id << ' ' << name << " $end\n";
                break;
            default:
                out_ << "$var real 64 " << id << ' ' << name << " $end\n";
                break;
            }
        }
        for (const auto& p : m.processes) {
            const std::string id = vcd_id(next++);
            loc_ids_.push_back(id);
            out_ << "$var integer 32 " << id << ' ' << vcd_name(p.name) << "_loc $end\n";
        }
        out_ << "$upscope $end\n$enddefinitions $end\n";
    }

    void dump(const eda::NetworkState& s, bool full) {
        const auto& m = net_.model();
        const auto tick =
            static_cast<std::uint64_t>(std::llround(s.time / options_.tick_seconds));
        bool stamped = false;
        auto stamp = [&] {
            if (stamped) return;
            if (!have_tick_ || tick > last_tick_) out_ << '#' << tick << '\n';
            last_tick_ = tick;
            have_tick_ = true;
            stamped = true;
        };
        if (full) {
            stamp();
            out_ << "$dumpvars\n";
        }
        for (VarId v = 0; v < m.vars.size(); ++v) {
            if (!full && prev_values_[v] == s.values[v]) continue;
            stamp();
            emit_value(m.vars[v].type, s.values[v], var_ids_[v]);
        }
        for (std::size_t p = 0; p < m.processes.size(); ++p) {
            if (!full && prev_locations_[p] == s.locations[p]) continue;
            stamp();
            out_ << binary64(s.locations[p]) << ' ' << loc_ids_[p] << '\n';
        }
        if (full) out_ << "$end\n";
        prev_values_ = s.values;
        prev_locations_ = s.locations;
    }

private:
    void emit_value(const Type& t, const Value& v, const std::string& id) {
        switch (t.kind) {
        case TypeKind::Bool:
            out_ << (v.as_bool() ? '1' : '0') << id << '\n';
            break;
        case TypeKind::Int:
            out_ << binary64(v.as_int()) << ' ' << id << '\n';
            break;
        default: {
            char buf[40];
            std::snprintf(buf, sizeof buf, "r%.16g", v.as_real());
            out_ << buf << ' ' << id << '\n';
            break;
        }
        }
    }

    const eda::Network& net_;
    std::ostream& out_;
    VcdOptions options_;
    std::vector<std::string> var_ids_;
    std::vector<std::string> loc_ids_;
    std::vector<Value> prev_values_;
    std::vector<int> prev_locations_;
    std::uint64_t last_tick_ = 0;
    bool have_tick_ = false;
};

} // namespace

PathOutcome write_vcd(const PathGenerator& gen, Rng& rng, std::ostream& out,
                      const VcdOptions& options) {
    if (!(options.tick_seconds > 0.0)) throw Error("VCD tick must be positive");
    VcdWriter writer(gen.network(), out, options);
    writer.header();

    eda::NetworkState s = gen.network().initial_state();
    writer.dump(s, /*full=*/true);
    std::size_t steps = 0;
    for (;;) {
        const auto outcome = gen.step(s, rng, steps);
        writer.dump(s, /*full=*/false);
        if (outcome) return *outcome;
    }
}

} // namespace slimsim::sim
