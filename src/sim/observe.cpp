#include "sim/observe.hpp"

#include <algorithm>
#include <cmath>

#include "stat/bernoulli.hpp"
#include "support/json.hpp"

namespace slimsim::sim {

SeriesStore::SeriesStore(std::size_t capacity)
    : capacity_(std::max<std::size_t>(2, capacity)) {}

void SeriesStore::push(const ProgressSnapshot& snapshot) {
    const std::lock_guard<std::mutex> lock(mutex_);
    latest_ = snapshot;
    if (pushed_++ % stride_ != 0) {
        latest_retained_ = false;
        return;
    }
    if (points_.size() >= capacity_) {
        // Coarsen: keep every other point and double the stride. The span
        // stays the whole run; only the resolution halves.
        std::size_t keep = 0;
        for (std::size_t i = 0; i < points_.size(); i += 2) {
            points_[keep++] = points_[i];
        }
        points_.resize(keep);
        stride_ *= 2;
    }
    points_.push_back(snapshot);
    latest_retained_ = true;
}

std::vector<ProgressSnapshot> SeriesStore::points() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<ProgressSnapshot> out = points_;
    if (!latest_retained_) out.push_back(latest_);
    return out;
}

std::string SeriesStore::to_json() const {
    std::vector<ProgressSnapshot> snapshot = points();
    std::size_t stride = 0;
    std::uint64_t pushed = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stride = stride_;
        pushed = pushed_;
    }
    json::Value doc = json::Value::object();
    doc["stride"] = stride;
    doc["count"] = pushed;
    json::Value pts = json::Value::array();
    for (const ProgressSnapshot& p : snapshot) {
        json::Value entry = json::Value::object();
        entry["samples"] = p.samples;
        entry["successes"] = p.successes;
        entry["estimate"] = p.estimate;
        entry["half_width"] = p.half_width;
        entry["required"] = p.required;
        entry["elapsed_seconds"] = p.elapsed_seconds;
        entry["eta_seconds"] = p.eta_seconds;
        pts.push_back(std::move(entry));
    }
    doc["points"] = std::move(pts);
    return doc.dump();
}

ProgressSnapshot make_progress_snapshot(std::uint64_t samples, std::uint64_t successes,
                                        std::uint64_t required, double elapsed_seconds,
                                        const ProgressOptions& options) {
    ProgressSnapshot snap;
    snap.samples = samples;
    snap.successes = successes;
    snap.required = required;
    snap.elapsed_seconds = elapsed_seconds;
    if (samples == 0) return snap;

    stat::BernoulliSummary summary;
    summary.count = samples;
    summary.successes = successes;
    snap.estimate = summary.mean();

    const double z = stat::normal_quantile(1.0 - options.delta / 2.0);
    if (samples >= 2) {
        snap.half_width = z * std::sqrt(summary.variance() / static_cast<double>(samples));
    }

    // ETA: fixed criteria expose their sample count; for adaptive criteria
    // extrapolate the Chow-Robbins stop point n ~= z^2 var / eps^2 from the
    // current variance estimate.
    double target = static_cast<double>(required);
    if (required == 0 && options.eps > 0.0 && samples >= 2) {
        target = std::ceil(z * z * summary.variance() / (options.eps * options.eps));
        // An adaptive criterion cannot legally stop before its sample floor,
        // however tight the variance extrapolation already looks.
        target = std::max(target, static_cast<double>(options.min_samples));
    }
    // A sample budget caps the run regardless of what the criterion wants.
    if (options.budget_max_samples > 0 &&
        (target == 0.0 || target > static_cast<double>(options.budget_max_samples))) {
        target = static_cast<double>(options.budget_max_samples);
    }
    if (target > 0.0 && elapsed_seconds > 0.0) {
        const double remaining = target - static_cast<double>(samples);
        snap.eta_seconds =
            remaining <= 0.0
                ? 0.0
                : elapsed_seconds * remaining / static_cast<double>(samples);
    }
    // A wall-clock budget bounds the ETA even when the criterion's own ETA
    // is unknown (< 0): the run ends at the deadline either way.
    if (options.budget_max_seconds > 0.0) {
        const double budget_left =
            std::max(0.0, options.budget_max_seconds - elapsed_seconds);
        snap.eta_seconds = snap.eta_seconds < 0.0
                               ? budget_left
                               : std::min(snap.eta_seconds, budget_left);
    }
    return snap;
}

} // namespace slimsim::sim
