#include "sim/runner.hpp"

#include <chrono>
#include <sstream>

#include "support/memprobe.hpp"

namespace slimsim::sim {

std::string EstimationResult::to_string() const {
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << successes << "/" << samples << " paths, strategy "
       << strategy << ", " << criterion << ", " << wall_seconds << " s)";
    return os.str();
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          Strategy& strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options,
                          telemetry::RunReport* report) {
    const auto start = std::chrono::steady_clock::now();
    PathGenerator gen(net, property, strategy, options);
    Rng rng(seed);
    stat::BernoulliSummary summary;
    EstimationResult result;
    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1; // stop-criterion trajectory at powers of two
    while (!criterion.should_stop(summary)) {
        const PathOutcome out = gen.run(rng);
        summary.add(out.satisfied);
        ++result.terminals[static_cast<std::size_t>(out.terminal)];
        if (report != nullptr && summary.count == next_mark) {
            report->stop_trajectory.push_back({summary.count, required});
            next_mark *= 2;
        }
    }
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = strategy.name();
    result.criterion = criterion.name();
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != summary.count) {
            report->stop_trajectory.push_back({summary.count, required});
        }
        report->value = result.estimate;
        report->samples = result.samples;
        report->successes = result.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = 1;
        report->terminals = terminal_histogram(result.terminals);
        // Stream 0 denotes the master stream (parallel workers use splits).
        report->worker_stats = {
            telemetry::WorkerStats{0, 0, result.samples, result.samples}};
    }
    return result;
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          Strategy& strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options) {
    return estimate(net, property, strategy, criterion, seed, options, nullptr);
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          StrategyKind strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options,
                          telemetry::RunReport* report) {
    const auto strat = make_strategy(strategy);
    return estimate(net, property, *strat, criterion, seed, options, report);
}

} // namespace slimsim::sim
