#include "sim/runner.hpp"

#include <chrono>
#include <optional>
#include <sstream>

#include "sim/coverage.hpp"
#include "sim/live_metrics.hpp"
#include "support/diagnostics.hpp"
#include "support/memprobe.hpp"

namespace slimsim::sim {

std::string EstimationResult::to_string() const {
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << successes << "/" << samples << " paths, strategy "
       << strategy << ", " << criterion << ", " << wall_seconds << " s)";
    if (status != RunStatus::Converged) {
        os << " [" << sim::to_string(status) << ": " << stop_cause << "]";
    }
    return os.str();
}

void quarantine_error(std::vector<std::string>& log, std::uint64_t path_index,
                      const char* what) {
    if (log.size() >= kMaxQuarantinedErrors) return;
    log.push_back("path " + std::to_string(path_index) + ": " + what);
}

RunCheckpoint make_run_checkpoint(
    const RunControlOptions& control, std::uint64_t seed, const std::string& property_text,
    const std::string& strategy_name, const std::string& criterion_name,
    std::uint64_t cursor, std::uint64_t successes, std::uint64_t total_steps,
    const std::array<std::size_t, kPathTerminalCount>& terminals,
    const std::vector<std::string>& error_log, const std::vector<double>& curve_bounds,
    const std::vector<std::uint64_t>& curve_tree) {
    RunCheckpoint ck;
    ck.model_hash = control.model_hash;
    ck.seed = seed;
    ck.property_hash = fnv1a64(property_text);
    ck.strategy = strategy_name;
    ck.criterion = criterion_name;
    ck.cursor = cursor;
    ck.successes = successes;
    ck.total_steps = total_steps;
    ck.terminal_tags.assign(terminals.begin(), terminals.end());
    ck.error_log = error_log;
    ck.curve_bounds = curve_bounds;
    ck.curve_tree = curve_tree;
    return ck;
}

void fill_run_status(telemetry::RunReport* report, RunStatus status,
                     const std::string& stop_cause, double achieved_half_width,
                     std::uint64_t path_errors, const std::vector<std::string>& error_log) {
    if (report == nullptr) return;
    report->run_status.status = sim::to_string(status);
    report->run_status.stop_cause = stop_cause;
    report->run_status.achieved_half_width = achieved_half_width;
    report->run_status.path_errors = path_errors;
    report->run_status.error_log = error_log;
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          Strategy& strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options,
                          telemetry::RunReport* report) {
    const auto start = std::chrono::steady_clock::now();
    // Coverage profiling switches to the curve runners' per-path RNG streams
    // (path j simulates with Rng(seed).split(j)) so the accepted path set —
    // and with it the estimate and the profile — matches a parallel coverage
    // run at any worker count byte for byte (sim/coverage.hpp).
    const bool coverage = options.coverage;
    std::optional<eda::ElementIndex> element_index;
    std::optional<CoverageShard> shard;
    SimOptions sim_options = options;
    if (coverage) {
        element_index.emplace(net.model());
        shard.emplace(*element_index);
        sim_options.coverage_shard = &*shard;
    }
    PathGenerator gen(net, property, strategy, sim_options);
    const Rng master(seed);
    Rng rng(seed);
    stat::BernoulliSummary summary;
    EstimationResult result;
    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1; // stop-criterion trajectory at powers of two

    // Run hardening (docs/robustness.md): checkpoint/resume needs per-path
    // RNG streams — path j always simulates with Rng(seed).split(j) — so a
    // resumed run continues the exact path sequence the interrupted run
    // would have produced.
    const RunControlOptions& control = options.control;
    const bool per_path = coverage || control.per_path_streams();
    const bool tolerate = control.fault.kind == FaultPolicyKind::Tolerate;
    RunGovernor governor(control, start);
    std::uint64_t total_steps = 0;
    std::uint64_t path_index = 0;
    if (control.resume != nullptr) {
        const RunCheckpoint& ck = *control.resume;
        ck.validate(control.model_hash, seed, property.text, strategy.name(),
                    criterion.name(), {});
        path_index = ck.cursor;
        summary.count = ck.cursor;
        summary.successes = ck.successes;
        total_steps = ck.total_steps;
        for (std::size_t i = 0; i < ck.terminal_tags.size() && i < kPathTerminalCount; ++i) {
            result.terminals[i] = ck.terminal_tags[i];
        }
        result.error_log = ck.error_log;
        result.path_errors = result.terminals[static_cast<std::size_t>(PathTerminal::Error)];
        while (next_mark <= ck.cursor) next_mark *= 2;
    }
    // Journal hooks mirror the parallel runner exactly — one worker ring,
    // merged after the loop — so journals are byte-identical (deterministic
    // view) at every worker count.
    journal::Journal* jnl = options.journal;
    if (jnl != nullptr) jnl->begin_workers(1);
    const std::uint64_t journal_base = path_index;
    LiveRunMetrics live(options.metrics, control.budget);
    auto save_checkpoint = [&] {
        const std::size_t bytes =
            make_run_checkpoint(control, seed, property.text, strategy.name(),
                                criterion.name(), summary.count, summary.successes,
                                total_steps, result.terminals, result.error_log)
                .save(control.checkpoint_path);
        live.add_checkpoint(bytes);
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Debug, "checkpoint", "checkpoint written",
                      {{"samples", summary.count},
                       {"bytes", static_cast<std::uint64_t>(bytes)}});
        }
    };
    std::uint64_t next_checkpoint =
        control.checkpoint_every > 0 ? summary.count + control.checkpoint_every : 0;

    const bool capture = options.witness.per_kind > 0;
    WitnessBuffer witness_buffer(options.witness.per_kind);
    const ProgressFn& progress = options.progress.callback;
    // ETA snapshots account for active budget caps (sim/observe.hpp).
    ProgressOptions progress_options = options.progress;
    progress_options.budget_max_seconds = control.budget.max_wall_seconds;
    progress_options.budget_max_samples = control.budget.max_samples;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };

    tracer::Span run_span(options.trace_lane,
                          options.trace_lane != nullptr
                              ? options.trace_lane->intern("sim.estimate")
                              : tracer::kNoName);

    Rng pre_path(0);
    {
        // Decision observation stays scoped to the sampling loop: the
        // witness replay below reuses `strategy` and must not pollute the
        // decision histograms.
        const ObserverGuard observe(strategy, coverage ? &*shard : nullptr);
        // The criterion is consulted before the governor, so a run whose
        // budget and convergence land on the same sample reports Converged.
        while (!criterion.should_stop(summary) &&
               !governor.should_stop(summary.count, total_steps, result.path_errors)) {
            if (per_path) rng = master.split(path_index);
            if (capture && !witness_buffer.saturated()) pre_path = rng;
            PathOutcome out;
            if (tolerate) {
                try {
                    out = gen.run(rng);
                } catch (const std::exception& e) {
                    // Deterministic fault isolation: the throwing path
                    // becomes an Error-tagged unsatisfied sample and its
                    // message is quarantined (bounded).
                    out = PathOutcome{false, PathTerminal::Error, 0.0, 0};
                    quarantine_error(result.error_log, path_index, e.what());
                    live.add_quarantined();
                    if (jnl != nullptr) {
                        jnl->worker(0).emit(journal::Level::Debug,
                                            path_index - journal_base, "quarantine",
                                            e.what());
                    }
                }
            } else {
                out = gen.run(rng);
            }
            // Error outcomes must not become witnesses: replaying one would
            // rethrow the fault.
            if (capture && out.terminal != PathTerminal::Error) {
                witness_buffer.offer(path_index, pre_path, out);
            }
            ++path_index;
            summary.add(out.satisfied);
            live.add_samples(1);
            ++result.terminals[static_cast<std::size_t>(out.terminal)];
            if (out.terminal == PathTerminal::Error) ++result.path_errors;
            total_steps += out.steps;
            if (summary.count == next_mark) {
                if (report != nullptr) {
                    report->stop_trajectory.push_back(
                        {summary.count, required, summary.successes});
                }
                if (jnl != nullptr) {
                    jnl->emit(journal::Level::Trace, "mark",
                              "stop-criterion trajectory mark",
                              {{"samples", summary.count},
                               {"successes", summary.successes}});
                }
                next_mark *= 2;
            }
            if (next_checkpoint != 0 && summary.count >= next_checkpoint) {
                save_checkpoint();
                next_checkpoint += control.checkpoint_every;
            }
            if (progress || live) {
                const auto now = std::chrono::steady_clock::now();
                if (std::chrono::duration<double>(now - last_progress).count() >=
                    options.progress.min_interval_seconds) {
                    const ProgressSnapshot snap =
                        make_progress_snapshot(summary.count, summary.successes,
                                               required, elapsed(), progress_options);
                    live.on_snapshot(snap);
                    if (progress) progress(snap);
                    last_progress = now;
                }
            }
        }
    }
    if (progress || live) {
        const ProgressSnapshot snap = make_progress_snapshot(
            summary.count, summary.successes, required, elapsed(), progress_options);
        live.on_snapshot(snap);
        if (progress) progress(snap);
    }
    run_span.end();
    if (jnl != nullptr) {
        const std::uint64_t journal_accepted[] = {summary.count - journal_base};
        jnl->merge_workers(journal_accepted, journal_base);
        jnl->emit(journal::Level::Info, "stop", governor.stop_cause(),
                  {{"status", std::string(sim::to_string(governor.status()))},
                   {"samples", summary.count}});
    }

    if (capture) {
        // Replay with instruments stripped so witnesses do not double-count
        // telemetry or trace events.
        SimOptions replay_options = options;
        replay_options.recorder = nullptr;
        replay_options.trace_lane = nullptr;
        replay_options.coverage = false;
        replay_options.coverage_shard = nullptr;
        replay_options.metrics = nullptr;
        replay_options.journal = nullptr;
        const PathGenerator replay_gen(net, property, strategy, replay_options);
        const WitnessBuffer buffers[] = {witness_buffer};
        const std::uint64_t accepted[] = {summary.count};
        const auto selected =
            select_witness_paths(buffers, accepted, options.witness.per_kind);
        result.witnesses =
            replay_witnesses(replay_gen, selected, options.witness.max_bytes);
    }
    if (coverage) {
        const CoverageShard* shard_ptr = &*shard;
        const std::uint64_t accepted = summary.count;
        result.coverage = merge_coverage({&shard_ptr, 1}, {&accepted, 1});
    }
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = strategy.name();
    result.criterion = criterion.name();
    result.status = governor.status();
    result.stop_cause = governor.stop_cause();
    result.achieved_half_width = criterion.achieved_half_width(summary);
    // Partial or not, a requested checkpoint is always written so the run
    // can be continued (or audited) later.
    if (!control.checkpoint_path.empty()) save_checkpoint();
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != summary.count) {
            report->stop_trajectory.push_back(
                {summary.count, required, summary.successes});
        }
        report->value = result.estimate;
        report->samples = result.samples;
        report->successes = result.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = 1;
        report->terminals = terminal_histogram(result.terminals);
        // Stream 0 denotes the master stream (parallel workers use splits).
        report->worker_stats = {
            telemetry::WorkerStats{0, 0, result.samples, result.samples}};
        if (coverage) report->coverage = result.coverage;
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    return result;
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          Strategy& strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options) {
    return estimate(net, property, strategy, criterion, seed, options, nullptr);
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          StrategyKind strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options,
                          telemetry::RunReport* report) {
    const auto strat = make_strategy(strategy);
    return estimate(net, property, *strat, criterion, seed, options, report);
}

std::string CurveResult::to_string() const {
    std::ostringstream os;
    os << "curve over " << points.size() << " bounds (" << samples
       << " shared paths, strategy " << strategy << ", " << criterion << ", " << band
       << " band +-" << simultaneous_eps << ", " << wall_seconds << " s)";
    if (status != RunStatus::Converged) {
        os << " [" << sim::to_string(status) << ": " << stop_cause << "]";
    }
    for (const auto& p : points) {
        os << "\n  u = " << p.bound << "  p^ = " << p.estimate << "  (" << p.successes
           << "/" << samples << ")";
    }
    return os.str();
}

void validate_curve_request(const TimedReachability& property, const CurveOptions& curve) {
    if (property.kind != FormulaKind::Reach || property.lo != 0.0) {
        throw Error("curve estimation supports plain timed reachability "
                    "P( <> [0,u] goal ) only");
    }
    if (curve.bounds.empty()) throw Error("curve estimation needs at least one bound");
    double prev = 0.0;
    for (const double b : curve.bounds) {
        if (!(b > prev)) throw Error("curve bounds must be positive and strictly ascending");
        prev = b;
    }
    if (curve.bounds.back() > property.bound) {
        throw Error("curve bounds must not exceed the property's time bound");
    }
}

std::vector<telemetry::CurvePoint> curve_points(const stat::CurveSummary& summary) {
    std::vector<telemetry::CurvePoint> out;
    out.reserve(summary.size());
    for (std::size_t i = 0; i < summary.size(); ++i) {
        out.push_back({summary.bounds()[i], summary.successes(i), summary.estimate(i)});
    }
    return out;
}

CurveResult estimate_curve(const eda::Network& net, const TimedReachability& property,
                           Strategy& strategy, const stat::StopCriterion& criterion,
                           const CurveOptions& curve, std::uint64_t seed,
                           const SimOptions& options, telemetry::RunReport* report) {
    validate_curve_request(property, curve);
    const auto start = std::chrono::steady_clock::now();
    // Paths only need to run to the largest requested bound; the hit time of
    // a path simulated to u_max decides every smaller bound at once.
    TimedReachability horizon = property;
    horizon.bound = curve.bounds.back();
    const bool coverage = options.coverage;
    std::optional<eda::ElementIndex> element_index;
    std::optional<CoverageShard> shard;
    SimOptions sim_options = options;
    if (coverage) {
        element_index.emplace(net.model());
        shard.emplace(*element_index);
        sim_options.coverage_shard = &*shard;
    }
    const ObserverGuard observe(strategy, coverage ? &*shard : nullptr);
    PathGenerator gen(net, horizon, strategy, sim_options);
    const Rng master(seed);
    stat::CurveSummary summary(curve.bounds);
    stat::BernoulliSummary last; // the largest bound; drives progress/trajectory
    CurveResult result;
    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1; // stop-criterion trajectory at powers of two

    // Run hardening; curve runs already use per-path streams, so resume only
    // needs to restore the accepted state and continue at the cursor.
    const RunControlOptions& control = options.control;
    const bool tolerate = control.fault.kind == FaultPolicyKind::Tolerate;
    RunGovernor governor(control, start);
    std::uint64_t total_steps = 0;
    std::uint64_t path_index = 0;
    if (control.resume != nullptr) {
        const RunCheckpoint& ck = *control.resume;
        ck.validate(control.model_hash, seed, property.text, strategy.name(),
                    criterion.name(), curve.bounds);
        summary.restore(ck.cursor, ck.curve_tree);
        path_index = ck.cursor;
        last.count = ck.cursor;
        last.successes = ck.successes;
        total_steps = ck.total_steps;
        for (std::size_t i = 0; i < ck.terminal_tags.size() && i < kPathTerminalCount; ++i) {
            result.terminals[i] = ck.terminal_tags[i];
        }
        result.error_log = ck.error_log;
        result.path_errors = result.terminals[static_cast<std::size_t>(PathTerminal::Error)];
        while (next_mark <= ck.cursor) next_mark *= 2;
    }
    // Journal hooks mirror the parallel curve runner (one worker ring,
    // merged after the loop); see estimate() above.
    journal::Journal* jnl = options.journal;
    if (jnl != nullptr) jnl->begin_workers(1);
    const std::uint64_t journal_base = path_index;
    LiveRunMetrics live(options.metrics, control.budget);
    auto save_checkpoint = [&] {
        const std::size_t bytes =
            make_run_checkpoint(control, seed, property.text, strategy.name(),
                                criterion.name(), summary.count(), last.successes,
                                total_steps, result.terminals, result.error_log,
                                curve.bounds, summary.tree())
                .save(control.checkpoint_path);
        live.add_checkpoint(bytes);
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Debug, "checkpoint", "checkpoint written",
                      {{"samples", summary.count()},
                       {"bytes", static_cast<std::uint64_t>(bytes)}});
        }
    };
    std::uint64_t next_checkpoint =
        control.checkpoint_every > 0 ? summary.count() + control.checkpoint_every : 0;

    const ProgressFn& progress = options.progress.callback;
    ProgressOptions progress_options = options.progress;
    progress_options.budget_max_seconds = control.budget.max_wall_seconds;
    progress_options.budget_max_samples = control.budget.max_samples;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };

    tracer::Span run_span(options.trace_lane,
                          options.trace_lane != nullptr
                              ? options.trace_lane->intern("sim.estimate_curve")
                              : tracer::kNoName);

    while (!criterion.should_stop_curve(summary) &&
           !governor.should_stop(summary.count(), total_steps, result.path_errors)) {
        // Per-path RNG streams: path j simulates with split(seed, j)
        // whatever the worker count, so curve results never depend on it.
        Rng rng = master.split(path_index);
        PathOutcome out;
        if (tolerate) {
            try {
                out = gen.run(rng);
            } catch (const std::exception& e) {
                out = PathOutcome{false, PathTerminal::Error, 0.0, 0};
                quarantine_error(result.error_log, path_index, e.what());
                live.add_quarantined();
                if (jnl != nullptr) {
                    jnl->worker(0).emit(journal::Level::Debug,
                                        path_index - journal_base, "quarantine",
                                        e.what());
                }
            }
        } else {
            out = gen.run(rng);
        }
        ++path_index;
        summary.add(out.satisfied, out.end_time);
        last.add(out.satisfied);
        live.add_samples(1);
        ++result.terminals[static_cast<std::size_t>(out.terminal)];
        if (out.terminal == PathTerminal::Error) ++result.path_errors;
        total_steps += out.steps;
        if (summary.count() == next_mark) {
            if (report != nullptr) {
                report->stop_trajectory.push_back(
                    {summary.count(), required, last.successes});
            }
            if (jnl != nullptr) {
                jnl->emit(journal::Level::Trace, "mark",
                          "stop-criterion trajectory mark",
                          {{"samples", summary.count()},
                           {"successes", last.successes}});
            }
            next_mark *= 2;
        }
        if (next_checkpoint != 0 && summary.count() >= next_checkpoint) {
            save_checkpoint();
            next_checkpoint += control.checkpoint_every;
        }
        if (progress || live) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - last_progress).count() >=
                options.progress.min_interval_seconds) {
                const ProgressSnapshot snap = make_progress_snapshot(
                    summary.count(), last.successes, required, elapsed(),
                    progress_options);
                live.on_snapshot(snap);
                if (progress) progress(snap);
                last_progress = now;
            }
        }
    }
    if (progress || live) {
        const ProgressSnapshot snap = make_progress_snapshot(
            summary.count(), last.successes, required, elapsed(), progress_options);
        live.on_snapshot(snap);
        if (progress) progress(snap);
    }
    run_span.end();
    if (jnl != nullptr) {
        const std::uint64_t journal_accepted[] = {summary.count() - journal_base};
        jnl->merge_workers(journal_accepted, journal_base);
        jnl->emit(journal::Level::Info, "stop", governor.stop_cause(),
                  {{"status", std::string(sim::to_string(governor.status()))},
                   {"samples", summary.count()}});
    }

    if (coverage) {
        const CoverageShard* shard_ptr = &*shard;
        const std::uint64_t accepted = summary.count();
        result.coverage = merge_coverage({&shard_ptr, 1}, {&accepted, 1});
    }
    result.points = curve_points(summary);
    result.samples = summary.count();
    result.band = stat::to_string(curve.band);
    result.simultaneous_eps = stat::simultaneous_half_width(curve.band, curve.delta,
                                                            summary.size(), result.samples);
    result.strategy = strategy.name();
    result.criterion = criterion.name();
    result.status = governor.status();
    result.stop_cause = governor.stop_cause();
    // The curve's achieved guarantee is the simultaneous band half-width.
    result.achieved_half_width = result.simultaneous_eps;
    if (!control.checkpoint_path.empty()) save_checkpoint();
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != result.samples) {
            report->stop_trajectory.push_back({result.samples, required, last.successes});
        }
        report->value = result.points.back().estimate;
        report->samples = result.samples;
        report->successes = last.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = 1;
        report->terminals = terminal_histogram(result.terminals);
        report->worker_stats = {
            telemetry::WorkerStats{0, 0, result.samples, result.samples}};
        report->curve = {result.band, result.simultaneous_eps, result.points};
        if (coverage) report->coverage = result.coverage;
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    return result;
}

CurveResult estimate_curve(const eda::Network& net, const TimedReachability& property,
                           StrategyKind strategy, const stat::StopCriterion& criterion,
                           const CurveOptions& curve, std::uint64_t seed,
                           const SimOptions& options, telemetry::RunReport* report) {
    const auto strat = make_strategy(strategy);
    return estimate_curve(net, property, *strat, criterion, curve, seed, options, report);
}

} // namespace slimsim::sim
