#include "sim/runner.hpp"

#include <chrono>
#include <sstream>

#include "support/memprobe.hpp"

namespace slimsim::sim {

std::string EstimationResult::to_string() const {
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << successes << "/" << samples << " paths, strategy "
       << strategy << ", " << criterion << ", " << wall_seconds << " s)";
    return os.str();
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          Strategy& strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options) {
    const auto start = std::chrono::steady_clock::now();
    PathGenerator gen(net, property, strategy, options);
    Rng rng(seed);
    stat::BernoulliSummary summary;
    EstimationResult result;
    while (!criterion.should_stop(summary)) {
        const PathOutcome out = gen.run(rng);
        summary.add(out.satisfied);
        ++result.terminals[static_cast<std::size_t>(out.terminal)];
    }
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = strategy.name();
    result.criterion = criterion.name();
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

EstimationResult estimate(const eda::Network& net, const TimedReachability& property,
                          StrategyKind strategy, const stat::StopCriterion& criterion,
                          std::uint64_t seed, const SimOptions& options) {
    const auto strat = make_strategy(strategy);
    return estimate(net, property, *strat, criterion, seed, options);
}

} // namespace slimsim::sim
