// Live run gauges/counters (docs/observability.md): a small bundle the
// estimation runners update from their consuming thread alongside the
// progress stream, so a scrape of the metrics registry sees the current
// estimate, half-width, ETA and budget headroom mid-run.
//
// All handles resolve once at construction (registry mutex, off the hot
// path); every update is a relaxed atomic store/add. Header-only: the two
// runners are the only users.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/observe.hpp"
#include "sim/run_control.hpp"
#include "support/metrics.hpp"

namespace slimsim::sim {

class LiveRunMetrics {
public:
    /// `registry` may be null (metrics off — every method is then a no-op
    /// the branch predictor eats). `budget` is copied for the headroom
    /// gauges; pass {} when no run control is active.
    explicit LiveRunMetrics(metrics::Registry* registry, RunBudget budget = {})
        : budget_(budget) {
        if (registry == nullptr) return;
        c_samples_ = &registry->counter("slimsim_samples_consumed_total",
                                        "Samples accepted by the consuming thread.");
        c_rounds_ = &registry->counter("slimsim_consumer_rounds_total",
                                       "Collector drain rounds consumed.");
        c_checkpoint_writes_ = &registry->counter(
            "slimsim_checkpoint_writes_total", "Checkpoint files written.");
        c_checkpoint_bytes_ = &registry->counter(
            "slimsim_checkpoint_bytes_total", "Bytes of checkpoint data written.");
        c_quarantined_ = &registry->counter(
            "slimsim_quarantined_paths_total",
            "Paths quarantined by fault isolation instead of aborting the run.");
        g_samples_ = &registry->gauge("slimsim_live_samples",
                                      "Samples consumed so far (live).");
        g_estimate_ = &registry->gauge("slimsim_live_estimate",
                                       "Running probability estimate (live).");
        g_half_width_ = &registry->gauge(
            "slimsim_live_half_width", "Confidence-interval half-width (live).");
        g_eta_ = &registry->gauge(
            "slimsim_live_eta_seconds",
            "Extrapolated seconds to completion (live); -1 when unknown.");
        g_elapsed_ = &registry->gauge("slimsim_live_elapsed_seconds",
                                      "Wall seconds since the run started (live).");
        if (budget_.active()) {
            g_budget_seconds_ = &registry->gauge(
                "slimsim_budget_wall_seconds_remaining",
                "Wall seconds left in the run budget; -1 when uncapped.");
            g_budget_samples_ = &registry->gauge(
                "slimsim_budget_samples_remaining",
                "Samples left in the run budget; -1 when uncapped.");
        }
    }

    explicit operator bool() const { return g_samples_ != nullptr; }

    /// Consuming-thread updates (shard 0 by convention: one writer).
    void add_samples(std::uint64_t n) {
        if (c_samples_ != nullptr && n > 0) c_samples_->add(0, n);
    }
    void add_round() {
        if (c_rounds_ != nullptr) c_rounds_->add(0);
    }
    void add_checkpoint(std::size_t bytes) {
        if (c_checkpoint_writes_ != nullptr) {
            c_checkpoint_writes_->add(0);
            c_checkpoint_bytes_->add(0, bytes);
        }
    }
    void add_quarantined() {
        if (c_quarantined_ != nullptr) c_quarantined_->add(0);
    }

    void on_snapshot(const ProgressSnapshot& snap) {
        if (g_samples_ == nullptr) return;
        g_samples_->set(static_cast<double>(snap.samples));
        g_estimate_->set(snap.estimate);
        g_half_width_->set(snap.half_width);
        g_eta_->set(snap.eta_seconds);
        g_elapsed_->set(snap.elapsed_seconds);
        if (g_budget_seconds_ != nullptr) {
            g_budget_seconds_->set(
                budget_.max_wall_seconds > 0.0
                    ? std::max(0.0, budget_.max_wall_seconds - snap.elapsed_seconds)
                    : -1.0);
            g_budget_samples_->set(
                budget_.max_samples > 0
                    ? static_cast<double>(
                          budget_.max_samples -
                          std::min<std::uint64_t>(budget_.max_samples, snap.samples))
                    : -1.0);
        }
    }

private:
    RunBudget budget_;
    metrics::Counter* c_samples_ = nullptr;
    metrics::Counter* c_rounds_ = nullptr;
    metrics::Counter* c_checkpoint_writes_ = nullptr;
    metrics::Counter* c_checkpoint_bytes_ = nullptr;
    metrics::Counter* c_quarantined_ = nullptr;
    metrics::Gauge* g_samples_ = nullptr;
    metrics::Gauge* g_estimate_ = nullptr;
    metrics::Gauge* g_half_width_ = nullptr;
    metrics::Gauge* g_eta_ = nullptr;
    metrics::Gauge* g_elapsed_ = nullptr;
    metrics::Gauge* g_budget_seconds_ = nullptr;
    metrics::Gauge* g_budget_samples_ = nullptr;
};

} // namespace slimsim::sim
