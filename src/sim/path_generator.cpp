#include "sim/path_generator.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "expr/timeline.hpp"
#include "sim/coverage.hpp"

namespace slimsim::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::vector<std::pair<std::string, std::uint64_t>>
terminal_histogram(const std::array<std::size_t, kPathTerminalCount>& terminals) {
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(kPathTerminalCount);
    for (std::size_t i = 0; i < kPathTerminalCount; ++i) {
        out.emplace_back(to_string(static_cast<PathTerminal>(i)), terminals[i]);
    }
    return out;
}

std::string to_string(PathTerminal t) {
    switch (t) {
    case PathTerminal::Goal: return "goal";
    case PathTerminal::TimeBound: return "time-bound";
    case PathTerminal::Refuted: return "refuted";
    case PathTerminal::Deadlock: return "deadlock";
    case PathTerminal::Timelock: return "timelock";
    case PathTerminal::Error: return "error";
    }
    return "?";
}

PathGenerator::PathGenerator(const eda::Network& net, const PathFormula& formula,
                             Strategy& strategy, SimOptions options)
    : net_(net), formula_(formula), strategy_(strategy), options_(options),
      cov_(options.coverage_shard) {
    SLIMSIM_ASSERT(formula_.goal != nullptr);
    SLIMSIM_ASSERT(formula_.kind != FormulaKind::Until || formula_.hold != nullptr);
    if (!net_.reference_interpreter()) {
        goal_prog_ = expr::compile(*formula_.goal);
        if (formula_.hold != nullptr) hold_prog_ = expr::compile(*formula_.hold);
    }
    if (telemetry::Recorder* rec = options_.recorder;
        rec != nullptr && rec->enabled()) {
        c_paths_ = &rec->counter("sim.paths");
        c_steps_ = &rec->counter("sim.steps");
        c_markovian_ = &rec->counter("sim.markovian_steps");
        c_strategy_ = &rec->counter("sim.strategy_steps");
        c_delays_ = &rec->counter("sim.pure_delays");
        c_interned_ = &rec->counter("sim.interned_states");
        h_steps_ = &rec->histogram("sim.steps_per_path");
    }
    if (metrics::Registry* reg = options_.metrics; reg != nullptr) {
        SLIMSIM_ASSERT(options_.metrics_shard < reg->shards());
        mc_shard_ = options_.metrics_shard;
        mc_started_ = &reg->counter("slimsim_paths_started_total",
                                    "Simulation paths started.");
        mc_completed_ = &reg->counter("slimsim_paths_completed_total",
                                      "Simulation paths completed.");
        mc_steps_ = &reg->counter("slimsim_path_steps_total",
                                  "Discrete steps over all paths.");
        mc_fire_markov_ = &reg->counter("slimsim_transition_fires_live_total",
                                        "Transition fires by kind (live).",
                                        metrics::label("kind", "markovian"));
        mc_fire_strategy_ = &reg->counter("slimsim_transition_fires_live_total",
                                          "Transition fires by kind (live).",
                                          metrics::label("kind", "strategy"));
        mc_fire_delay_ = &reg->counter("slimsim_transition_fires_live_total",
                                       "Transition fires by kind (live).",
                                       metrics::label("kind", "pure_delay"));
        mh_path_seconds_ = &reg->histogram("slimsim_path_seconds",
                                           "Wall-clock seconds per simulated path.",
                                           metrics::time_buckets());
    }
    if (tracer::Lane* lane = options_.trace_lane; lane != nullptr) {
        lane_ = lane;
        n_path_ = lane->intern("sim.path");
        n_delay_ = lane->intern("sim.delay_sample");
        n_choose_ = lane->intern("sim.strategy_choose");
        n_fire_markov_ = lane->intern("sim.fire_markovian");
        n_fire_strategy_ = lane->intern("sim.fire_strategy");
        n_arg_steps_ = lane->intern("steps");
        n_arg_count_ = lane->intern("count");
    }
}

bool PathGenerator::goal_holds(const eda::NetworkState& s) const {
    if (goal_prog_ == nullptr) return net_.eval_global(s, *formula_.goal);
    return goal_prog_->run_bool(s.values, scratch_.eval);
}

bool PathGenerator::hold_holds(const eda::NetworkState& s) const {
    if (hold_prog_ == nullptr) return net_.eval_global(s, *formula_.hold);
    return hold_prog_->run_bool(s.values, scratch_.eval);
}

PathGenerator::MonitorResult PathGenerator::instant_verdict(
    const eda::NetworkState& s) const {
    const double t = s.time;
    switch (formula_.kind) {
    case FormulaKind::Reach:
        if (t >= formula_.lo && t <= formula_.bound && goal_holds(s)) {
            return {Verdict::Satisfied, 0.0};
        }
        if (t >= formula_.bound) return {Verdict::Refuted, 0.0};
        return {};
    case FormulaKind::Until:
        if (t >= formula_.lo && t <= formula_.bound && goal_holds(s)) {
            return {Verdict::Satisfied, 0.0};
        }
        if (!hold_holds(s)) return {Verdict::Refuted, 0.0};
        if (t >= formula_.bound) return {Verdict::Refuted, 0.0};
        return {};
    case FormulaKind::Globally:
        if (!goal_holds(s)) return {Verdict::Refuted, 0.0};
        if (t >= formula_.bound) return {Verdict::Satisfied, 0.0};
        return {};
    }
    return {};
}

PathGenerator::MonitorResult PathGenerator::elapse_verdict(const eda::NetworkState& s,
                                                           double d) const {
    if (d <= 0.0) return {};
    // Reference mode recomputes the derivative vector and tree-walks the
    // timeline analysis; compiled mode reads the interned derivatives and
    // runs the formula atoms' programs.
    std::vector<double> rates_vec;
    std::span<const double> rates;
    if (goal_prog_ == nullptr) {
        net_.compute_rates(s, rates_vec);
        rates = rates_vec;
    } else {
        rates = net_.rates_of(s, scratch_);
    }
    auto sat_goal = [&] {
        if (goal_prog_ == nullptr) {
            return expr::satisfying_times(*formula_.goal,
                                          expr::TimedEvalContext{s.values, {}, rates});
        }
        return goal_prog_->satisfying_times(s.values, rates, scratch_.eval);
    };
    auto sat_hold = [&] {
        if (hold_prog_ == nullptr) {
            return expr::satisfying_times(*formula_.hold,
                                          expr::TimedEvalContext{s.values, {}, rates});
        }
        return hold_prog_->satisfying_times(s.values, rates, scratch_.eval);
    };
    const double t = s.time;
    const double to_bound = formula_.bound - t; // > 0 (instant decided otherwise)

    switch (formula_.kind) {
    case FormulaKind::Reach: {
        const double win_lo = std::max(0.0, formula_.lo - t);
        const double win_hi = std::min(d, to_bound);
        if (win_lo <= win_hi) {
            const IntervalSet hits = sat_goal().clamp(win_lo, win_hi);
            if (const auto e = hits.earliest()) return {Verdict::Satisfied, *e};
        }
        if (d >= to_bound) return {Verdict::Refuted, to_bound};
        return {};
    }
    case FormulaKind::Until: {
        const IntervalSet hold_set = sat_hold();
        // hold is true at the current instant (instant_verdict), so the
        // prefix exists; closure effects can only extend it.
        const double hold_until = hold_set.prefix_horizon().value_or(0.0);
        const double win_lo = std::max(0.0, formula_.lo - t);
        const double win_hi = std::min(d, to_bound);
        if (win_lo <= win_hi) {
            const IntervalSet hits = sat_goal().clamp(win_lo, win_hi);
            if (const auto e = hits.earliest(); e && *e <= hold_until) {
                return {Verdict::Satisfied, *e};
            }
        }
        if (hold_until < std::min(d, to_bound)) return {Verdict::Refuted, hold_until};
        if (d >= to_bound) return {Verdict::Refuted, to_bound};
        return {};
    }
    case FormulaKind::Globally: {
        const IntervalSet ok_set = sat_goal();
        const double ok_until = ok_set.prefix_horizon().value_or(0.0);
        const double lim = std::min(d, to_bound);
        if (ok_until < lim) return {Verdict::Refuted, ok_until};
        if (d >= to_bound) return {Verdict::Satisfied, to_bound};
        return {};
    }
    }
    return {};
}

void PathGenerator::advance(eda::NetworkState& s, double d) const {
    if (cov_ != nullptr && d > 0.0) cov_->on_elapse(d);
    net_.elapse(s, d);
}

std::optional<PathOutcome> PathGenerator::iterate(eda::NetworkState& s, Rng& rng,
                                                  std::size_t& steps, Trace* trace,
                                                  std::optional<double>* sched_abs) const {
    auto finish = [&](bool satisfied, PathTerminal terminal) {
        PathOutcome out;
        out.satisfied = satisfied;
        out.terminal = terminal;
        out.end_time = s.time;
        out.steps = steps;
        if (trace != nullptr) {
            trace->set_result(s.time, to_string(terminal), satisfied);
        }
        return out;
    };
    // Classifies a monitor decision into a terminal and finishes.
    auto finish_decided = [&](const MonitorResult& v) {
        SLIMSIM_ASSERT(v.verdict != Verdict::Undecided);
        if (v.verdict == Verdict::Satisfied) return finish(true, PathTerminal::Goal);
        const bool at_bound = s.time >= formula_.bound - 1e-12;
        return finish(false, at_bound ? PathTerminal::TimeBound : PathTerminal::Refuted);
    };

    if (steps > options_.max_steps) {
        throw Error("path exceeded " + std::to_string(options_.max_steps) +
                    " discrete steps; the model appears to be Zeno");
    }
    if (const MonitorResult v = instant_verdict(s); v.verdict != Verdict::Undecided) {
        return finish_decided(v);
    }
    const double remaining = formula_.bound - s.time; // > 0 here

    // The strategies resolve delays within the *invariant horizon* — a
    // MaxTime delay may overshoot the formula bound and miss the goal;
    // that is the strategy's semantics. Only when no invariant
    // constrains the future does the formula bound cap the window
    // (delays past it cannot change the verdict).
    const bool ref = goal_prog_ == nullptr; // reference-interpreter mode
    const double horizon =
        ref ? net_.invariant_horizon(s) : net_.invariant_horizon(s, scratch_);
    const double window = std::isinf(horizon) ? remaining : horizon;

    // Markovian race: earliest exponential among rate locations.
    double t_markov = kInf;
    eda::ProcessId markov_winner = -1;
    if (lane_ != nullptr) lane_->begin(n_delay_);
    std::vector<eda::MarkovianRate> rates_vec;
    std::span<const eda::MarkovianRate> rates;
    if (ref) {
        rates_vec = net_.markovian_rates(s);
        rates = rates_vec;
    } else {
        rates = net_.markovian_rates(s, scratch_);
    }
    for (const auto& [proc, rate] : rates) {
        const double d = rng.exponential(rate);
        if (d < t_markov) {
            t_markov = d;
            markov_winner = proc;
        }
    }
    if (lane_ != nullptr) lane_->end(n_arg_count_, static_cast<double>(rates.size()));

    std::vector<eda::Candidate> cands_vec;
    std::span<const eda::Candidate> cands;
    if (ref) {
        cands_vec = net_.candidates(s, window);
        cands = cands_vec;
    } else {
        cands = net_.candidates(s, window, scratch_);
    }

    // Strategy choice, honoring the Continue memory policy if an earlier
    // scheduled time is still ahead and feasible.
    std::optional<ScheduledChoice> choice;
    const bool continue_policy =
        options_.memory == MemoryPolicy::Continue && sched_abs != nullptr;
    const double sched = continue_policy && *sched_abs ? **sched_abs : -1.0;
    if (continue_policy && sched >= s.time && sched - s.time <= window) {
        const double d = sched - s.time;
        std::vector<int> enabled;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            if (cands[i].enabled.contains(d)) enabled.push_back(static_cast<int>(i));
        }
        if (!enabled.empty()) {
            choice = ScheduledChoice{d, enabled[rng.uniform_index(enabled.size())]};
        }
    }
    if (!choice) {
        if (lane_ != nullptr) lane_->begin(n_choose_);
        choice = strategy_.choose(net_, s, cands, window, rng);
        if (lane_ != nullptr) {
            lane_->end(n_arg_count_, static_cast<double>(cands.size()));
        }
        if (choice && continue_policy) *sched_abs = s.time + choice->delay;
    }
    SLIMSIM_ASSERT(!choice || (choice->delay >= 0.0 && choice->delay <= window));

    // If neither the Markovian race nor the strategy schedules anything
    // before the formula bound, the verdict is decided by pure elapse.
    const double strategy_delay = choice ? choice->delay : kInf;
    const double markov_delay = markov_winner >= 0 ? t_markov : kInf;
    const double next_event = std::min(strategy_delay, markov_delay);
    if (next_event > remaining && next_event <= window) {
        const MonitorResult v = elapse_verdict(s, remaining);
        SLIMSIM_ASSERT(v.verdict != Verdict::Undecided);
        advance(s, v.at);
        return finish_decided(v);
    }

    const bool markov_first =
        markov_winner >= 0 && t_markov <= window &&
        (!choice || t_markov < choice->delay ||
         (t_markov == choice->delay && rng.bernoulli(0.5)));

    if (markov_first) {
        if (const MonitorResult v = elapse_verdict(s, t_markov);
            v.verdict != Verdict::Undecided) {
            advance(s, v.at);
            return finish_decided(v);
        }
        advance(s, t_markov);
        const eda::StepInfo info =
            ref ? net_.execute_markovian(s, markov_winner, rng)
                : net_.execute_markovian(s, markov_winner, rng, scratch_);
        if (cov_ != nullptr) cov_->on_step(info);
        if (trace != nullptr) trace->record(s.time, describe_step(net_, info));
        if (c_markovian_ != nullptr) c_markovian_->add();
        if (mc_fire_markov_ != nullptr) mc_fire_markov_->add(mc_shard_);
        if (lane_ != nullptr) {
            lane_->instant(n_fire_markov_, n_arg_steps_, static_cast<double>(steps + 1));
        }
        ++steps;
        // Exponential memorylessness makes resampling unbiased; the
        // Continue policy only preserves the *strategy's* schedule.
        return std::nullopt;
    }

    if (choice) {
        if (const MonitorResult v = elapse_verdict(s, choice->delay);
            v.verdict != Verdict::Undecided) {
            advance(s, v.at);
            return finish_decided(v);
        }
        advance(s, choice->delay);
        if (choice->candidate >= 0) {
            const eda::Candidate& c = cands[static_cast<std::size_t>(choice->candidate)];
            const eda::StepInfo info =
                ref ? net_.execute(s, c, rng) : net_.execute(s, c, rng, scratch_);
            if (cov_ != nullptr) cov_->on_step(info);
            if (trace != nullptr) trace->record(s.time, describe_step(net_, info));
            if (sched_abs != nullptr) sched_abs->reset();
            if (c_strategy_ != nullptr) c_strategy_->add();
            if (mc_fire_strategy_ != nullptr) mc_fire_strategy_->add(mc_shard_);
            if (lane_ != nullptr) {
                lane_->instant(n_fire_strategy_, n_arg_steps_,
                               static_cast<double>(steps + 1));
            }
        } else {
            if (trace != nullptr) trace->record(s.time, "delay (no transition chosen)");
            if (c_delays_ != nullptr) c_delays_->add();
            if (mc_fire_delay_ != nullptr) mc_fire_delay_->add(mc_shard_);
        }
        ++steps;
        return std::nullopt;
    }

    // Nothing can fire within the window.
    if (const MonitorResult v = elapse_verdict(s, std::min(window, remaining));
        v.verdict != Verdict::Undecided) {
        // A decision by pure elapse; classify stuck paths precisely:
        // a refutation strictly before the bound is a genuine violation
        // (Refuted); running out of time in a state from which no
        // discrete step can ever happen again is a Deadlock.
        const bool nothing_ever = cands.empty() && rates.empty() && horizon == kInf;
        if (nothing_ever && v.verdict == Verdict::Refuted) {
            if (options_.deadlock == StuckPolicy::Error) {
                throw Error("deadlock at t=" + std::to_string(s.time) +
                            ": no discrete step can ever happen again");
            }
            if (v.at >= remaining - 1e-12) {
                advance(s, v.at);
                return finish(false, PathTerminal::Deadlock);
            }
        }
        advance(s, v.at);
        return finish_decided(v);
    }
    // window < remaining and the monitor is still undecided at the
    // horizon: the invariant expires with nothing enabled — timelock.
    SLIMSIM_ASSERT(window < remaining);
    if (options_.timelock == StuckPolicy::Error) {
        throw Error("timelock at t=" + std::to_string(s.time + window) +
                    ": an invariant expires with no enabled transition");
    }
    advance(s, window);
    return finish(false, PathTerminal::Timelock);
}

PathOutcome PathGenerator::run_impl(Rng& rng, Trace* trace) const {
    // Compiled mode copies the cached initial state into the reusable
    // per-path buffers; reference mode recomputes it per path (the
    // pre-compilation allocation profile).
    eda::NetworkState fresh;
    if (goal_prog_ == nullptr) {
        fresh = net_.initial_state();
    } else {
        scratch_.path_state = net_.initial_state(scratch_);
    }
    eda::NetworkState& s = goal_prog_ == nullptr ? fresh : scratch_.path_state;
    std::optional<double> scheduled_abs; // Continue memory policy
    std::size_t steps = 0;
    if (trace != nullptr) trace->record(0.0, "initial " + describe_state(net_, s));
    if (lane_ != nullptr) lane_->begin(n_path_);
    if (cov_ != nullptr) cov_->begin_path(s);
    // The wall clock is read only when metrics are on, so the unmetered hot
    // path pays a single branch per path.
    std::chrono::steady_clock::time_point path_start;
    if (mc_started_ != nullptr) {
        mc_started_->add(mc_shard_);
        path_start = std::chrono::steady_clock::now();
    }
    for (;;) {
        if (auto out = iterate(s, rng, steps, trace, &scheduled_abs)) {
            if (cov_ != nullptr) cov_->end_path();
            if (mc_completed_ != nullptr) {
                mc_completed_->add(mc_shard_);
                mc_steps_->add(mc_shard_, out->steps);
                mh_path_seconds_->observe(
                    mc_shard_, std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - path_start)
                                   .count());
            }
            if (c_paths_ != nullptr) {
                c_paths_->add();
                c_steps_->add(out->steps);
                h_steps_->add(out->steps);
                if (scratch_.interner.size() > interned_reported_) {
                    c_interned_->add(scratch_.interner.size() - interned_reported_);
                    interned_reported_ = scratch_.interner.size();
                }
            }
            if (lane_ != nullptr) {
                lane_->end(n_arg_steps_, static_cast<double>(out->steps));
            }
            return *out;
        }
    }
}

std::optional<PathOutcome> PathGenerator::step(eda::NetworkState& state, Rng& rng,
                                               std::size_t& steps) const {
    return iterate(state, rng, steps, nullptr, nullptr);
}

} // namespace slimsim::sim
