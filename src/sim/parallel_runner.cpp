#include "sim/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "sim/coverage.hpp"
#include "sim/live_metrics.hpp"
#include "stat/collector.hpp"
#include "support/memprobe.hpp"

namespace slimsim::sim {

namespace {

/// One quarantined path fault of a worker: (local path index, message).
/// Bounded at kMaxQuarantinedErrors per worker — each worker's first
/// kMaxQuarantinedErrors faults cover every possible contribution to the
/// globally-ordered first kMaxQuarantinedErrors.
using WorkerFaults = std::vector<std::pair<std::uint64_t, std::string>>;

/// Merges per-worker quarantined faults over *accepted* samples (local index
/// < accepted[w]) into global accepted order — sample r of worker w of k is
/// global path base + r*k + w — appended to the resumed log, bounded.
std::vector<std::string> merge_fault_log(const std::vector<std::string>& resumed_log,
                                         const std::vector<WorkerFaults>& faults,
                                         const std::vector<std::uint64_t>& accepted,
                                         std::uint64_t base, std::size_t k) {
    std::vector<std::string> log = resumed_log;
    std::vector<std::pair<std::uint64_t, const std::string*>> merged;
    for (std::size_t w = 0; w < k; ++w) {
        for (const auto& [local, msg] : faults[w]) {
            if (local < accepted[w]) merged.emplace_back(base + local * k + w, &msg);
        }
    }
    std::sort(merged.begin(), merged.end());
    for (const auto& [idx, msg] : merged) {
        if (log.size() >= kMaxQuarantinedErrors) break;
        log.push_back("path " + std::to_string(idx) + ": " + *msg);
    }
    return log;
}

std::uint64_t tag_count(const std::vector<std::uint64_t>& tags, PathTerminal t) {
    const auto i = static_cast<std::size_t>(t);
    return tags.size() > i ? tags[i] : 0;
}

std::array<std::size_t, kPathTerminalCount>
terminal_array(const std::vector<std::uint64_t>& tags) {
    std::array<std::size_t, kPathTerminalCount> out{};
    for (std::size_t t = 0; t < tags.size() && t < out.size(); ++t) out[t] = tags[t];
    return out;
}

} // namespace

EstimationResult estimate_parallel(const eda::Network& net,
                                   const TimedReachability& property, StrategyKind strategy,
                                   const stat::StopCriterion& criterion, std::uint64_t seed,
                                   const ParallelOptions& options,
                                   telemetry::RunReport* report) {
    if (strategy == StrategyKind::Input) {
        throw Error("the input strategy cannot be used in parallel runs");
    }
    if (options.workers < 1) throw Error("worker count must be at least 1");
    const bool coverage = options.sim.coverage;
    if (coverage && options.collection != CollectionMode::RoundRobin) {
        throw Error("coverage profiling requires round-robin collection");
    }
    const RunControlOptions& control = options.sim.control;
    if (control.per_path_streams() && options.collection != CollectionMode::RoundRobin) {
        throw Error("checkpoint/resume requires round-robin collection");
    }
    // Checkpoint/resume switches to per-path RNG streams and sample-granular
    // ordered draining, exactly like coverage: the accepted prefix (and so
    // the checkpoint cursor) is then the same for every worker count.
    const bool per_path = coverage || control.per_path_streams();
    const bool tolerate = control.fault.kind == FaultPolicyKind::Tolerate;

    const auto start = std::chrono::steady_clock::now();
    const Rng master(seed);
    stat::SampleCollector collector(options.workers);
    collector.set_metrics(options.sim.metrics);
    std::atomic<bool> stop{false};

    stat::BernoulliSummary summary;
    // Terminal counts over *accepted* samples: deterministic in (seed, k)
    // under round-robin collection, unlike counts over generated paths.
    std::vector<std::uint64_t> terminal_tags;
    std::uint64_t total_steps = 0;
    std::uint64_t base = 0; // resumed global path cursor
    std::vector<std::string> resumed_log;
    if (control.resume != nullptr) {
        const RunCheckpoint& ck = *control.resume;
        ck.validate(control.model_hash, seed, property.text, to_string(strategy),
                    criterion.name(), {});
        base = ck.cursor;
        summary.count = ck.cursor;
        summary.successes = ck.successes;
        total_steps = ck.total_steps;
        terminal_tags = ck.terminal_tags;
        resumed_log = ck.error_log;
    }
    RunGovernor governor(control, start);
    // Live metrics: workers only touch their own per-shard counter cells;
    // gauges/round counters are updated from this consuming thread.
    LiveRunMetrics live(options.sim.metrics, control.budget);
    // Journal: workers write quarantines into their own rings (merged into
    // global path order after join); serial events — marks, checkpoints,
    // the stop record — fire from this consuming thread only.
    journal::Journal* jnl = options.sim.journal;
    if (jnl != nullptr) jnl->begin_workers(options.workers);

    // One shard per worker; worker w records its paths in generation order
    // (its local path i is global path w + i*k), so merge_coverage can walk
    // the accepted prefix in global path order after the threads join.
    std::optional<eda::ElementIndex> element_index;
    std::vector<std::unique_ptr<CoverageShard>> shards;
    if (coverage) {
        element_index.emplace(net.model());
        shards.reserve(options.workers);
        for (std::size_t w = 0; w < options.workers; ++w) {
            shards.push_back(std::make_unique<CoverageShard>(*element_index));
        }
    }

    std::mutex merge_mutex;
    std::vector<std::uint64_t> generated(options.workers, 0);
    std::vector<WorkerFaults> worker_faults(options.workers);
    std::exception_ptr worker_error;

    // Lanes are created in worker order *before* the threads start, so lane
    // ids (the exported tid values) are deterministic in (seed, workers).
    std::vector<tracer::Lane*> lanes(options.workers, nullptr);
    if (options.tracer != nullptr && options.tracer->enabled()) {
        for (std::size_t w = 0; w < options.workers; ++w) {
            lanes[w] = options.tracer->lane("worker " + std::to_string(w));
        }
        collector.set_trace(options.tracer->lane("collector"));
    }

    const std::size_t witness_k = options.sim.witness.per_kind;
    std::vector<WitnessBuffer> witness_buffers;
    witness_buffers.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
        witness_buffers.emplace_back(witness_k);
    }

    std::vector<std::thread> threads;
    threads.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                Rng rng = master.split(w);
                const auto strat = make_strategy(strategy);
                SimOptions sim_options = options.sim;
                sim_options.trace_lane = lanes[w];
                if (sim_options.metrics != nullptr) {
                    sim_options.metrics_shard = w % sim_options.metrics->shards();
                }
                if (coverage) {
                    sim_options.coverage_shard = shards[w].get();
                    strat->set_observer(shards[w].get());
                }
                const PathGenerator gen(net, property, *strat, sim_options);
                WitnessBuffer& witnesses = witness_buffers[w];
                const bool capture = witnesses.active();
                Rng pre_path(0);
                std::uint64_t local_generated = 0;
                while (!stop.load(std::memory_order_relaxed)) {
                    // Coverage and checkpoint/resume runs switch to per-PATH
                    // RNG streams (global path j uses split(j); a resumed
                    // run continues at j = base + ...) so the accepted path
                    // set matches every other worker count.
                    if (per_path) {
                        rng = master.split(base + w + local_generated * options.workers);
                    }
                    if (capture && !witnesses.saturated()) pre_path = rng;
                    PathOutcome out;
                    if (tolerate) {
                        try {
                            out = gen.run(rng);
                        } catch (const std::exception& e) {
                            // Fault isolation: the throwing path becomes an
                            // Error-tagged unsatisfied sample; the message is
                            // quarantined with its local index so the
                            // consumer can filter to accepted samples.
                            out = PathOutcome{false, PathTerminal::Error, 0.0, 0};
                            live.add_quarantined();
                            if (jnl != nullptr) {
                                jnl->worker(w).emit(journal::Level::Debug,
                                                    local_generated, "quarantine",
                                                    e.what());
                            }
                            std::lock_guard lock(merge_mutex);
                            if (worker_faults[w].size() < kMaxQuarantinedErrors) {
                                worker_faults[w].emplace_back(local_generated, e.what());
                            }
                        }
                    } else {
                        out = gen.run(rng);
                    }
                    // Error outcomes never become witnesses: replay would
                    // rethrow the fault.
                    if (capture && out.terminal != PathTerminal::Error) {
                        witnesses.offer(local_generated, pre_path, out);
                    }
                    ++local_generated;
                    collector.push(w, stat::TaggedSample{
                                          out.satisfied,
                                          static_cast<std::uint8_t>(out.terminal), 0.0,
                                          out.steps});
                }
                std::lock_guard lock(merge_mutex);
                generated[w] = local_generated;
            } catch (...) {
                std::lock_guard lock(merge_mutex);
                if (!worker_error) worker_error = std::current_exception();
                stop.store(true);
            }
        });
    }

    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1;
    while (next_mark <= base) next_mark *= 2;
    auto save_checkpoint = [&] {
        // The consuming thread owns summary/terminal_tags; accepted counts
        // and fault lists are read under their own locks.
        const auto accepted_now = collector.consumed_per_worker();
        std::vector<std::string> log;
        {
            std::lock_guard lock(merge_mutex);
            log = merge_fault_log(resumed_log, worker_faults, accepted_now, base,
                                  options.workers);
        }
        const std::size_t bytes =
            make_run_checkpoint(control, seed, property.text, to_string(strategy),
                                criterion.name(), summary.count, summary.successes,
                                total_steps, terminal_array(terminal_tags), log)
                .save(control.checkpoint_path);
        live.add_checkpoint(bytes);
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Debug, "checkpoint", "checkpoint written",
                      {{"samples", summary.count},
                       {"bytes", static_cast<std::uint64_t>(bytes)}});
        }
    };
    std::uint64_t next_checkpoint =
        control.checkpoint_every > 0 ? summary.count + control.checkpoint_every : 0;
    // Progress callbacks fire from this consuming thread only, so they can
    // never perturb the deterministic (seed, workers) sample order.
    const ProgressFn& progress = options.sim.progress.callback;
    // ETA snapshots account for active budget caps (sim/observe.hpp).
    ProgressOptions progress_options = options.sim.progress;
    progress_options.budget_max_seconds = control.budget.max_wall_seconds;
    progress_options.budget_max_samples = control.budget.max_samples;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    while (!stop.load(std::memory_order_relaxed)) {
        std::size_t consumed = 0;
        if (per_path) {
            // Sample-granular ordered draining: with per-path streams the
            // accepted prefix — possibly ending mid-round — is the same for
            // every worker count. The criterion is consulted before the
            // governor so a budget landing on the convergence sample still
            // reports Converged; both run under the collector mutex and must
            // not call back into the collector (steps/tags are accumulators
            // the drain updates before done() runs).
            consumed = collector.drain_ordered(
                summary, nullptr, &terminal_tags,
                [&] {
                    // Sample-granular trajectory marks: this predicate runs
                    // after every accepted sample, so marks land at exactly
                    // the power-of-two counts a sequential run hits — the
                    // trajectory (and the diagnostics and journal derived
                    // from it) is deterministic in (seed) at any k.
                    if (summary.count == next_mark) {
                        if (report != nullptr) {
                            report->stop_trajectory.push_back(
                                {summary.count, required, summary.successes});
                        }
                        if (jnl != nullptr) {
                            jnl->emit(journal::Level::Trace, "mark",
                                      "stop-criterion trajectory mark",
                                      {{"samples", summary.count},
                                       {"successes", summary.successes}});
                        }
                        next_mark *= 2;
                    }
                    return criterion.should_stop(summary) ||
                           governor.should_stop(
                               summary.count, total_steps,
                               tag_count(terminal_tags, PathTerminal::Error));
                },
                &total_steps);
        } else if (options.collection == CollectionMode::RoundRobin) {
            // One round at a time, consulting the criterion in between:
            // the accepted sample set is then deterministic in (seed, k).
            consumed = collector.drain_rounds(summary, 1, &terminal_tags, &total_steps);
        } else {
            consumed = collector.drain_unordered(summary, &terminal_tags, &total_steps);
        }
        if (!per_path && report != nullptr && consumed > 0 &&
            summary.count >= next_mark) {
            // Round/unordered draining has no sample-granular hook; the mark
            // lands at whatever count the drain reached (not deterministic —
            // neither are these collection modes).
            report->stop_trajectory.push_back(
                {summary.count, required, summary.successes});
            while (next_mark <= summary.count) next_mark *= 2;
        }
        if (consumed > 0) {
            live.add_samples(consumed);
            live.add_round();
        }
        if ((progress || live) && consumed > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - last_progress).count() >=
                options.sim.progress.min_interval_seconds) {
                const ProgressSnapshot snap = make_progress_snapshot(
                    summary.count, summary.successes, required, elapsed(),
                    progress_options);
                live.on_snapshot(snap);
                if (progress) progress(snap);
                last_progress = now;
            }
        }
        if (consumed > 0 && criterion.should_stop(summary)) {
            stop.store(true);
            break;
        }
        if (governor.should_stop(summary.count, total_steps,
                                 tag_count(terminal_tags, PathTerminal::Error))) {
            stop.store(true);
            break;
        }
        if (next_checkpoint != 0 && summary.count >= next_checkpoint) {
            save_checkpoint();
            while (next_checkpoint <= summary.count) {
                next_checkpoint += control.checkpoint_every;
            }
        }
        if (consumed == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& t : threads) t.join();
    std::exception_ptr pending_error;
    {
        std::lock_guard lock(merge_mutex);
        pending_error = worker_error;
    }
    // The partial summary is still valuable when a worker aborted the run
    // (FailFast): emit the final progress snapshot and finalize the report
    // before rethrowing — only witness replay, coverage merge and the final
    // checkpoint are skipped.
    if (progress || live) {
        const ProgressSnapshot snap = make_progress_snapshot(
            summary.count, summary.successes, required, elapsed(), progress_options);
        live.on_snapshot(snap);
        if (progress) progress(snap);
    }
    if (jnl != nullptr) {
        jnl->merge_workers(collector.consumed_per_worker(), base);
        jnl->emit(journal::Level::Info, "stop", governor.stop_cause(),
                  {{"status", std::string(sim::to_string(governor.status()))},
                   {"samples", summary.count}});
    }

    EstimationResult result;
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    result.terminals = terminal_array(terminal_tags);
    result.status = governor.status();
    result.stop_cause = governor.stop_cause();
    result.achieved_half_width = criterion.achieved_half_width(summary);
    result.path_errors = tag_count(terminal_tags, PathTerminal::Error);

    const std::vector<std::uint64_t> accepted = collector.consumed_per_worker();
    {
        std::lock_guard lock(merge_mutex);
        result.error_log =
            merge_fault_log(resumed_log, worker_faults, accepted, base, options.workers);
    }
    if (pending_error == nullptr) {
        if (coverage) {
            std::vector<const CoverageShard*> shard_ptrs;
            shard_ptrs.reserve(shards.size());
            for (const auto& s : shards) shard_ptrs.push_back(s.get());
            result.coverage = merge_coverage(shard_ptrs, accepted);
        }
        if (witness_k > 0) {
            // Replay the selected paths on this thread with a fresh strategy
            // instance of the same kind (strategies are stateless) and with
            // instruments stripped, so replay does not double-count telemetry.
            SimOptions replay_options = options.sim;
            replay_options.recorder = nullptr;
            replay_options.trace_lane = nullptr;
            replay_options.coverage = false;
            replay_options.coverage_shard = nullptr;
            replay_options.metrics = nullptr;
            replay_options.journal = nullptr;
            const auto replay_strat = make_strategy(strategy);
            const PathGenerator replay_gen(net, property, *replay_strat, replay_options);
            const auto selected = select_witness_paths(witness_buffers, accepted, witness_k);
            result.witnesses =
                replay_witnesses(replay_gen, selected, options.sim.witness.max_bytes);
        }
        if (!control.checkpoint_path.empty()) save_checkpoint();
    } else {
        result.status = RunStatus::Degraded;
        result.stop_cause = "fail-fast worker abort";
    }
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != summary.count) {
            report->stop_trajectory.push_back(
                {summary.count, required, summary.successes});
        }
        report->value = result.estimate;
        report->samples = result.samples;
        report->successes = result.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = options.workers;
        report->terminals = terminal_histogram(result.terminals);
        report->collector = collector.stats();
        report->worker_stats.clear();
        for (std::size_t w = 0; w < options.workers; ++w) {
            report->worker_stats.push_back(
                telemetry::WorkerStats{w, w, generated[w], accepted[w]});
        }
        if (coverage && pending_error == nullptr) report->coverage = result.coverage;
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    if (pending_error) std::rethrow_exception(pending_error);
    return result;
}

EstimationResult estimate_parallel(const eda::Network& net,
                                   const TimedReachability& property, StrategyKind strategy,
                                   const stat::StopCriterion& criterion, std::uint64_t seed,
                                   const ParallelOptions& options) {
    return estimate_parallel(net, property, strategy, criterion, seed, options, nullptr);
}

CurveResult estimate_curve_parallel(const eda::Network& net,
                                    const TimedReachability& property,
                                    StrategyKind strategy,
                                    const stat::StopCriterion& criterion,
                                    const CurveOptions& curve, std::uint64_t seed,
                                    const ParallelOptions& options,
                                    telemetry::RunReport* report) {
    if (strategy == StrategyKind::Input) {
        throw Error("the input strategy cannot be used in parallel runs");
    }
    if (options.workers < 1) throw Error("worker count must be at least 1");
    validate_curve_request(property, curve);
    const RunControlOptions& control = options.sim.control;
    const bool tolerate = control.fault.kind == FaultPolicyKind::Tolerate;

    const auto start = std::chrono::steady_clock::now();
    // Paths only need to run to the largest requested bound.
    TimedReachability horizon = property;
    horizon.bound = curve.bounds.back();
    const Rng master(seed);
    const std::size_t k = options.workers;
    stat::SampleCollector collector(k);
    collector.set_metrics(options.sim.metrics);
    std::atomic<bool> stop{false};

    stat::CurveSummary summary(curve.bounds);
    stat::BernoulliSummary last; // the largest bound (sim horizon == u_max)
    std::vector<std::uint64_t> terminal_tags;
    std::uint64_t total_steps = 0;
    std::uint64_t base = 0; // resumed global path cursor
    std::vector<std::string> resumed_log;
    if (control.resume != nullptr) {
        const RunCheckpoint& ck = *control.resume;
        ck.validate(control.model_hash, seed, property.text, to_string(strategy),
                    criterion.name(), curve.bounds);
        base = ck.cursor;
        summary.restore(ck.cursor, ck.curve_tree);
        last.count = ck.cursor;
        last.successes = ck.successes;
        total_steps = ck.total_steps;
        terminal_tags = ck.terminal_tags;
        resumed_log = ck.error_log;
    }
    RunGovernor governor(control, start);
    LiveRunMetrics live(options.sim.metrics, control.budget);
    // Journal: as in estimate_parallel — per-worker quarantine rings,
    // serial events from the consuming thread.
    journal::Journal* jnl = options.sim.journal;
    if (jnl != nullptr) jnl->begin_workers(k);

    // Curve workers already use per-path RNG streams and sample-granular
    // ordered draining, so coverage only needs the per-worker shards.
    const bool coverage = options.sim.coverage;
    std::optional<eda::ElementIndex> element_index;
    std::vector<std::unique_ptr<CoverageShard>> shards;
    if (coverage) {
        element_index.emplace(net.model());
        shards.reserve(k);
        for (std::size_t w = 0; w < k; ++w) {
            shards.push_back(std::make_unique<CoverageShard>(*element_index));
        }
    }

    std::mutex merge_mutex;
    std::vector<std::uint64_t> generated(k, 0);
    std::vector<WorkerFaults> worker_faults(k);
    std::exception_ptr worker_error;

    std::vector<tracer::Lane*> lanes(k, nullptr);
    if (options.tracer != nullptr && options.tracer->enabled()) {
        for (std::size_t w = 0; w < k; ++w) {
            lanes[w] = options.tracer->lane("worker " + std::to_string(w));
        }
        collector.set_trace(options.tracer->lane("collector"));
    }

    std::vector<std::thread> threads;
    threads.reserve(k);
    for (std::size_t w = 0; w < k; ++w) {
        threads.emplace_back([&, w] {
            try {
                const auto strat = make_strategy(strategy);
                SimOptions sim_options = options.sim;
                sim_options.trace_lane = lanes[w];
                if (sim_options.metrics != nullptr) {
                    sim_options.metrics_shard = w % sim_options.metrics->shards();
                }
                if (coverage) {
                    sim_options.coverage_shard = shards[w].get();
                    strat->set_observer(shards[w].get());
                }
                const PathGenerator gen(net, horizon, *strat, sim_options);
                std::uint64_t local_generated = 0;
                // Worker w owns the global path indices base+w, base+w+k, ...
                // (base = resume cursor); each path gets its own RNG stream,
                // so sample r of worker w is the same path for every worker
                // count — and for every interruption point.
                for (std::uint64_t j = base + w; !stop.load(std::memory_order_relaxed);
                     j += k) {
                    Rng rng = master.split(j);
                    PathOutcome out;
                    if (tolerate) {
                        try {
                            out = gen.run(rng);
                        } catch (const std::exception& e) {
                            out = PathOutcome{false, PathTerminal::Error, 0.0, 0};
                            live.add_quarantined();
                            if (jnl != nullptr) {
                                jnl->worker(w).emit(journal::Level::Debug,
                                                    local_generated, "quarantine",
                                                    e.what());
                            }
                            std::lock_guard lock(merge_mutex);
                            if (worker_faults[w].size() < kMaxQuarantinedErrors) {
                                worker_faults[w].emplace_back(local_generated, e.what());
                            }
                        }
                    } else {
                        out = gen.run(rng);
                    }
                    ++local_generated;
                    collector.push(w, stat::TaggedSample{
                                          out.satisfied,
                                          static_cast<std::uint8_t>(out.terminal),
                                          out.end_time, out.steps});
                }
                std::lock_guard lock(merge_mutex);
                generated[w] = local_generated;
            } catch (...) {
                std::lock_guard lock(merge_mutex);
                if (!worker_error) worker_error = std::current_exception();
                stop.store(true);
            }
        });
    }

    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1;
    while (next_mark <= base) next_mark *= 2;
    auto save_checkpoint = [&] {
        const auto accepted_now = collector.consumed_per_worker();
        std::vector<std::string> log;
        {
            std::lock_guard lock(merge_mutex);
            log = merge_fault_log(resumed_log, worker_faults, accepted_now, base, k);
        }
        const std::size_t bytes =
            make_run_checkpoint(control, seed, property.text, to_string(strategy),
                                criterion.name(), summary.count(), last.successes,
                                total_steps, terminal_array(terminal_tags), log,
                                curve.bounds, summary.tree())
                .save(control.checkpoint_path);
        live.add_checkpoint(bytes);
        if (jnl != nullptr) {
            jnl->emit(journal::Level::Debug, "checkpoint", "checkpoint written",
                      {{"samples", summary.count()},
                       {"bytes", static_cast<std::uint64_t>(bytes)}});
        }
    };
    std::uint64_t next_checkpoint =
        control.checkpoint_every > 0 ? summary.count() + control.checkpoint_every : 0;
    const ProgressFn& progress = options.sim.progress.callback;
    ProgressOptions progress_options = options.sim.progress;
    progress_options.budget_max_seconds = control.budget.max_wall_seconds;
    progress_options.budget_max_samples = control.budget.max_samples;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    while (!stop.load(std::memory_order_relaxed)) {
        // Sample-granular ordered draining: the criterion is consulted after
        // every sample, so the run stops at exactly the same accepted prefix
        // as a sequential run — even when the final count is mid-round.
        const std::size_t consumed = collector.drain_ordered(
            last, &summary, &terminal_tags,
            [&] {
                // Sample-granular marks, exactly as in estimate_parallel.
                if (summary.count() == next_mark) {
                    if (report != nullptr) {
                        report->stop_trajectory.push_back(
                            {summary.count(), required, last.successes});
                    }
                    if (jnl != nullptr) {
                        jnl->emit(journal::Level::Trace, "mark",
                                  "stop-criterion trajectory mark",
                                  {{"samples", summary.count()},
                                   {"successes", last.successes}});
                    }
                    next_mark *= 2;
                }
                return criterion.should_stop_curve(summary) ||
                       governor.should_stop(summary.count(), total_steps,
                                            tag_count(terminal_tags,
                                                      PathTerminal::Error));
            },
            &total_steps);
        if (consumed > 0) {
            live.add_samples(consumed);
            live.add_round();
        }
        if ((progress || live) && consumed > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - last_progress).count() >=
                options.sim.progress.min_interval_seconds) {
                const ProgressSnapshot snap = make_progress_snapshot(
                    summary.count(), last.successes, required, elapsed(),
                    progress_options);
                live.on_snapshot(snap);
                if (progress) progress(snap);
                last_progress = now;
            }
        }
        if (consumed > 0 && criterion.should_stop_curve(summary)) {
            stop.store(true);
            break;
        }
        if (governor.should_stop(summary.count(), total_steps,
                                 tag_count(terminal_tags, PathTerminal::Error))) {
            stop.store(true);
            break;
        }
        if (next_checkpoint != 0 && summary.count() >= next_checkpoint) {
            save_checkpoint();
            while (next_checkpoint <= summary.count()) {
                next_checkpoint += control.checkpoint_every;
            }
        }
        if (consumed == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& t : threads) t.join();
    std::exception_ptr pending_error;
    {
        std::lock_guard lock(merge_mutex);
        pending_error = worker_error;
    }
    // As in estimate_parallel: on a FailFast worker abort the partial curve
    // is still reported (final snapshot + report) before rethrowing; only
    // coverage merge and the final checkpoint are skipped.
    if (progress || live) {
        const ProgressSnapshot snap = make_progress_snapshot(
            summary.count(), last.successes, required, elapsed(), progress_options);
        live.on_snapshot(snap);
        if (progress) progress(snap);
    }
    if (jnl != nullptr) {
        jnl->merge_workers(collector.consumed_per_worker(), base);
        jnl->emit(journal::Level::Info, "stop", governor.stop_cause(),
                  {{"status", std::string(sim::to_string(governor.status()))},
                   {"samples", summary.count()}});
    }

    const std::vector<std::uint64_t> accepted = collector.consumed_per_worker();
    CurveResult result;
    if (coverage && pending_error == nullptr) {
        std::vector<const CoverageShard*> shard_ptrs;
        shard_ptrs.reserve(shards.size());
        for (const auto& s : shards) shard_ptrs.push_back(s.get());
        result.coverage = merge_coverage(shard_ptrs, accepted);
    }
    result.points = curve_points(summary);
    result.samples = summary.count();
    result.band = stat::to_string(curve.band);
    result.simultaneous_eps = stat::simultaneous_half_width(curve.band, curve.delta,
                                                            summary.size(), result.samples);
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    result.terminals = terminal_array(terminal_tags);
    result.status = governor.status();
    result.stop_cause = governor.stop_cause();
    result.achieved_half_width = result.simultaneous_eps;
    result.path_errors = tag_count(terminal_tags, PathTerminal::Error);
    {
        std::lock_guard lock(merge_mutex);
        result.error_log = merge_fault_log(resumed_log, worker_faults, accepted, base, k);
    }
    if (pending_error == nullptr) {
        if (!control.checkpoint_path.empty()) save_checkpoint();
    } else {
        result.status = RunStatus::Degraded;
        result.stop_cause = "fail-fast worker abort";
    }
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != result.samples) {
            report->stop_trajectory.push_back({result.samples, required, last.successes});
        }
        report->value = result.points.back().estimate;
        report->samples = result.samples;
        report->successes = last.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = k;
        report->terminals = terminal_histogram(result.terminals);
        report->collector = collector.stats();
        report->worker_stats.clear();
        for (std::size_t w = 0; w < k; ++w) {
            // In curve mode streams are per path; stream id w stands for the
            // worker's family {w, w+k, w+2k, ...}.
            report->worker_stats.push_back(
                telemetry::WorkerStats{w, w, generated[w], accepted[w]});
        }
        report->curve = {result.band, result.simultaneous_eps, result.points};
        if (coverage && pending_error == nullptr) report->coverage = result.coverage;
        fill_run_status(report, result.status, result.stop_cause,
                        result.achieved_half_width, result.path_errors,
                        result.error_log);
    }
    if (pending_error) std::rethrow_exception(pending_error);
    return result;
}

} // namespace slimsim::sim
