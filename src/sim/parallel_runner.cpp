#include "sim/parallel_runner.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "stat/collector.hpp"
#include "support/memprobe.hpp"

namespace slimsim::sim {

EstimationResult estimate_parallel(const eda::Network& net,
                                   const TimedReachability& property, StrategyKind strategy,
                                   const stat::StopCriterion& criterion, std::uint64_t seed,
                                   const ParallelOptions& options) {
    if (strategy == StrategyKind::Input) {
        throw Error("the input strategy cannot be used in parallel runs");
    }
    if (options.workers < 1) throw Error("worker count must be at least 1");

    const auto start = std::chrono::steady_clock::now();
    const Rng master(seed);
    stat::SampleCollector collector(options.workers);
    std::atomic<bool> stop{false};

    std::mutex merge_mutex;
    std::array<std::size_t, kPathTerminalCount> terminals{}; // over *generated* paths
    std::exception_ptr worker_error;

    std::vector<std::thread> threads;
    threads.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                Rng rng = master.split(w);
                const auto strat = make_strategy(strategy);
                const PathGenerator gen(net, property, *strat, options.sim);
                std::array<std::size_t, kPathTerminalCount> local{};
                while (!stop.load(std::memory_order_relaxed)) {
                    const PathOutcome out = gen.run(rng);
                    local[static_cast<std::size_t>(out.terminal)]++;
                    collector.push(w, out.satisfied);
                }
                std::lock_guard lock(merge_mutex);
                for (std::size_t i = 0; i < local.size(); ++i) terminals[i] += local[i];
            } catch (...) {
                std::lock_guard lock(merge_mutex);
                if (!worker_error) worker_error = std::current_exception();
                stop.store(true);
            }
        });
    }

    stat::BernoulliSummary summary;
    while (!stop.load(std::memory_order_relaxed)) {
        std::size_t consumed = 0;
        if (options.collection == CollectionMode::RoundRobin) {
            // One round at a time, consulting the criterion in between:
            // the accepted sample set is then deterministic in (seed, k).
            consumed = collector.drain_rounds(summary, 1);
        } else {
            consumed = collector.drain_unordered(summary);
        }
        if (consumed > 0 && criterion.should_stop(summary)) {
            stop.store(true);
            break;
        }
        if (consumed == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& t : threads) t.join();
    {
        std::lock_guard lock(merge_mutex);
        if (worker_error) std::rethrow_exception(worker_error);
    }

    EstimationResult result;
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    result.terminals = terminals;
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

} // namespace slimsim::sim
