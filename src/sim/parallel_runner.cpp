#include "sim/parallel_runner.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "sim/coverage.hpp"
#include "stat/collector.hpp"
#include "support/memprobe.hpp"

namespace slimsim::sim {

EstimationResult estimate_parallel(const eda::Network& net,
                                   const TimedReachability& property, StrategyKind strategy,
                                   const stat::StopCriterion& criterion, std::uint64_t seed,
                                   const ParallelOptions& options,
                                   telemetry::RunReport* report) {
    if (strategy == StrategyKind::Input) {
        throw Error("the input strategy cannot be used in parallel runs");
    }
    if (options.workers < 1) throw Error("worker count must be at least 1");
    const bool coverage = options.sim.coverage;
    if (coverage && options.collection != CollectionMode::RoundRobin) {
        throw Error("coverage profiling requires round-robin collection");
    }

    const auto start = std::chrono::steady_clock::now();
    const Rng master(seed);
    stat::SampleCollector collector(options.workers);
    std::atomic<bool> stop{false};

    // One shard per worker; worker w records its paths in generation order
    // (its local path i is global path w + i*k), so merge_coverage can walk
    // the accepted prefix in global path order after the threads join.
    std::optional<eda::ElementIndex> element_index;
    std::vector<std::unique_ptr<CoverageShard>> shards;
    if (coverage) {
        element_index.emplace(net.model());
        shards.reserve(options.workers);
        for (std::size_t w = 0; w < options.workers; ++w) {
            shards.push_back(std::make_unique<CoverageShard>(*element_index));
        }
    }

    std::mutex merge_mutex;
    std::vector<std::uint64_t> generated(options.workers, 0);
    std::exception_ptr worker_error;

    // Lanes are created in worker order *before* the threads start, so lane
    // ids (the exported tid values) are deterministic in (seed, workers).
    std::vector<tracer::Lane*> lanes(options.workers, nullptr);
    if (options.tracer != nullptr && options.tracer->enabled()) {
        for (std::size_t w = 0; w < options.workers; ++w) {
            lanes[w] = options.tracer->lane("worker " + std::to_string(w));
        }
        collector.set_trace(options.tracer->lane("collector"));
    }

    const std::size_t witness_k = options.sim.witness.per_kind;
    std::vector<WitnessBuffer> witness_buffers;
    witness_buffers.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
        witness_buffers.emplace_back(witness_k);
    }

    std::vector<std::thread> threads;
    threads.reserve(options.workers);
    for (std::size_t w = 0; w < options.workers; ++w) {
        threads.emplace_back([&, w] {
            try {
                Rng rng = master.split(w);
                const auto strat = make_strategy(strategy);
                SimOptions sim_options = options.sim;
                sim_options.trace_lane = lanes[w];
                if (coverage) {
                    sim_options.coverage_shard = shards[w].get();
                    strat->set_observer(shards[w].get());
                }
                const PathGenerator gen(net, property, *strat, sim_options);
                WitnessBuffer& witnesses = witness_buffers[w];
                const bool capture = witnesses.active();
                Rng pre_path(0);
                std::uint64_t local_generated = 0;
                while (!stop.load(std::memory_order_relaxed)) {
                    // Coverage runs switch to per-PATH RNG streams (global
                    // path j uses split(j)) so the accepted path set — and
                    // the profile — matches every other worker count.
                    if (coverage) {
                        rng = master.split(w + local_generated * options.workers);
                    }
                    if (capture && !witnesses.saturated()) pre_path = rng;
                    const PathOutcome out = gen.run(rng);
                    if (capture) witnesses.offer(local_generated, pre_path, out);
                    ++local_generated;
                    collector.push(w, stat::TaggedSample{
                                          out.satisfied,
                                          static_cast<std::uint8_t>(out.terminal)});
                }
                std::lock_guard lock(merge_mutex);
                generated[w] = local_generated;
            } catch (...) {
                std::lock_guard lock(merge_mutex);
                if (!worker_error) worker_error = std::current_exception();
                stop.store(true);
            }
        });
    }

    stat::BernoulliSummary summary;
    // Terminal counts over *accepted* samples: deterministic in (seed, k)
    // under round-robin collection, unlike counts over generated paths.
    std::vector<std::uint64_t> terminal_tags;
    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1;
    // Progress callbacks fire from this consuming thread only, so they can
    // never perturb the deterministic (seed, workers) sample order.
    const ProgressFn& progress = options.sim.progress.callback;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    while (!stop.load(std::memory_order_relaxed)) {
        std::size_t consumed = 0;
        if (coverage) {
            // Sample-granular ordered draining: with per-path streams the
            // accepted prefix — possibly ending mid-round — is the same for
            // every worker count, so the coverage profile is too.
            consumed = collector.drain_ordered(
                summary, nullptr, &terminal_tags,
                [&] { return criterion.should_stop(summary); });
        } else if (options.collection == CollectionMode::RoundRobin) {
            // One round at a time, consulting the criterion in between:
            // the accepted sample set is then deterministic in (seed, k).
            consumed = collector.drain_rounds(summary, 1, &terminal_tags);
        } else {
            consumed = collector.drain_unordered(summary, &terminal_tags);
        }
        if (report != nullptr && consumed > 0 && summary.count >= next_mark) {
            report->stop_trajectory.push_back({summary.count, required});
            while (next_mark <= summary.count) next_mark *= 2;
        }
        if (progress && consumed > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - last_progress).count() >=
                options.sim.progress.min_interval_seconds) {
                progress(make_progress_snapshot(summary.count, summary.successes,
                                                required, elapsed(),
                                                options.sim.progress));
                last_progress = now;
            }
        }
        if (consumed > 0 && criterion.should_stop(summary)) {
            stop.store(true);
            break;
        }
        if (consumed == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& t : threads) t.join();
    {
        std::lock_guard lock(merge_mutex);
        if (worker_error) std::rethrow_exception(worker_error);
    }
    if (progress) {
        progress(make_progress_snapshot(summary.count, summary.successes, required,
                                        elapsed(), options.sim.progress));
    }

    EstimationResult result;
    result.estimate = summary.mean();
    result.samples = summary.count;
    result.successes = summary.successes;
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    for (std::size_t t = 0; t < terminal_tags.size() && t < result.terminals.size(); ++t) {
        result.terminals[t] = terminal_tags[t];
    }
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const std::vector<std::uint64_t> accepted = collector.consumed_per_worker();
    if (coverage) {
        std::vector<const CoverageShard*> shard_ptrs;
        shard_ptrs.reserve(shards.size());
        for (const auto& s : shards) shard_ptrs.push_back(s.get());
        result.coverage = merge_coverage(shard_ptrs, accepted);
    }
    if (witness_k > 0) {
        // Replay the selected paths on this thread with a fresh strategy
        // instance of the same kind (strategies are stateless) and with
        // instruments stripped, so replay does not double-count telemetry.
        SimOptions replay_options = options.sim;
        replay_options.recorder = nullptr;
        replay_options.trace_lane = nullptr;
        replay_options.coverage = false;
        replay_options.coverage_shard = nullptr;
        const auto replay_strat = make_strategy(strategy);
        const PathGenerator replay_gen(net, property, *replay_strat, replay_options);
        const auto selected = select_witness_paths(witness_buffers, accepted, witness_k);
        result.witnesses =
            replay_witnesses(replay_gen, selected, options.sim.witness.max_bytes);
    }

    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != summary.count) {
            report->stop_trajectory.push_back({summary.count, required});
        }
        report->value = result.estimate;
        report->samples = result.samples;
        report->successes = result.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = options.workers;
        report->terminals = terminal_histogram(result.terminals);
        report->collector = collector.stats();
        report->worker_stats.clear();
        for (std::size_t w = 0; w < options.workers; ++w) {
            report->worker_stats.push_back(
                telemetry::WorkerStats{w, w, generated[w], accepted[w]});
        }
        if (coverage) report->coverage = result.coverage;
    }
    return result;
}

EstimationResult estimate_parallel(const eda::Network& net,
                                   const TimedReachability& property, StrategyKind strategy,
                                   const stat::StopCriterion& criterion, std::uint64_t seed,
                                   const ParallelOptions& options) {
    return estimate_parallel(net, property, strategy, criterion, seed, options, nullptr);
}

CurveResult estimate_curve_parallel(const eda::Network& net,
                                    const TimedReachability& property,
                                    StrategyKind strategy,
                                    const stat::StopCriterion& criterion,
                                    const CurveOptions& curve, std::uint64_t seed,
                                    const ParallelOptions& options,
                                    telemetry::RunReport* report) {
    if (strategy == StrategyKind::Input) {
        throw Error("the input strategy cannot be used in parallel runs");
    }
    if (options.workers < 1) throw Error("worker count must be at least 1");
    validate_curve_request(property, curve);

    const auto start = std::chrono::steady_clock::now();
    // Paths only need to run to the largest requested bound.
    TimedReachability horizon = property;
    horizon.bound = curve.bounds.back();
    const Rng master(seed);
    const std::size_t k = options.workers;
    stat::SampleCollector collector(k);
    std::atomic<bool> stop{false};

    // Curve workers already use per-path RNG streams and sample-granular
    // ordered draining, so coverage only needs the per-worker shards.
    const bool coverage = options.sim.coverage;
    std::optional<eda::ElementIndex> element_index;
    std::vector<std::unique_ptr<CoverageShard>> shards;
    if (coverage) {
        element_index.emplace(net.model());
        shards.reserve(k);
        for (std::size_t w = 0; w < k; ++w) {
            shards.push_back(std::make_unique<CoverageShard>(*element_index));
        }
    }

    std::mutex merge_mutex;
    std::vector<std::uint64_t> generated(k, 0);
    std::exception_ptr worker_error;

    std::vector<tracer::Lane*> lanes(k, nullptr);
    if (options.tracer != nullptr && options.tracer->enabled()) {
        for (std::size_t w = 0; w < k; ++w) {
            lanes[w] = options.tracer->lane("worker " + std::to_string(w));
        }
        collector.set_trace(options.tracer->lane("collector"));
    }

    std::vector<std::thread> threads;
    threads.reserve(k);
    for (std::size_t w = 0; w < k; ++w) {
        threads.emplace_back([&, w] {
            try {
                const auto strat = make_strategy(strategy);
                SimOptions sim_options = options.sim;
                sim_options.trace_lane = lanes[w];
                if (coverage) {
                    sim_options.coverage_shard = shards[w].get();
                    strat->set_observer(shards[w].get());
                }
                const PathGenerator gen(net, horizon, *strat, sim_options);
                std::uint64_t local_generated = 0;
                // Worker w owns the global path indices w, w+k, w+2k, ...;
                // each path gets its own RNG stream, so sample r of worker w
                // is the same path for every worker count.
                for (std::uint64_t j = w; !stop.load(std::memory_order_relaxed); j += k) {
                    Rng rng = master.split(j);
                    const PathOutcome out = gen.run(rng);
                    ++local_generated;
                    collector.push(w, stat::TaggedSample{
                                          out.satisfied,
                                          static_cast<std::uint8_t>(out.terminal),
                                          out.end_time});
                }
                std::lock_guard lock(merge_mutex);
                generated[w] = local_generated;
            } catch (...) {
                std::lock_guard lock(merge_mutex);
                if (!worker_error) worker_error = std::current_exception();
                stop.store(true);
            }
        });
    }

    stat::CurveSummary summary(curve.bounds);
    stat::BernoulliSummary last; // the largest bound (sim horizon == u_max)
    std::vector<std::uint64_t> terminal_tags;
    const std::uint64_t required = criterion.fixed_sample_count().value_or(0);
    std::uint64_t next_mark = 1;
    const ProgressFn& progress = options.sim.progress.callback;
    auto last_progress = start;
    auto elapsed = [&] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    };
    while (!stop.load(std::memory_order_relaxed)) {
        // Sample-granular ordered draining: the criterion is consulted after
        // every sample, so the run stops at exactly the same accepted prefix
        // as a sequential run — even when the final count is mid-round.
        const std::size_t consumed = collector.drain_ordered(
            last, &summary, &terminal_tags,
            [&] { return criterion.should_stop_curve(summary); });
        if (report != nullptr && consumed > 0 && summary.count() >= next_mark) {
            report->stop_trajectory.push_back({summary.count(), required});
            while (next_mark <= summary.count()) next_mark *= 2;
        }
        if (progress && consumed > 0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - last_progress).count() >=
                options.sim.progress.min_interval_seconds) {
                progress(make_progress_snapshot(summary.count(), last.successes, required,
                                                elapsed(), options.sim.progress));
                last_progress = now;
            }
        }
        if (consumed > 0 && criterion.should_stop_curve(summary)) {
            stop.store(true);
            break;
        }
        if (consumed == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (auto& t : threads) t.join();
    {
        std::lock_guard lock(merge_mutex);
        if (worker_error) std::rethrow_exception(worker_error);
    }
    if (progress) {
        progress(make_progress_snapshot(summary.count(), last.successes, required,
                                        elapsed(), options.sim.progress));
    }

    const std::vector<std::uint64_t> accepted = collector.consumed_per_worker();
    CurveResult result;
    if (coverage) {
        std::vector<const CoverageShard*> shard_ptrs;
        shard_ptrs.reserve(shards.size());
        for (const auto& s : shards) shard_ptrs.push_back(s.get());
        result.coverage = merge_coverage(shard_ptrs, accepted);
    }
    result.points = curve_points(summary);
    result.samples = summary.count();
    result.band = stat::to_string(curve.band);
    result.simultaneous_eps = stat::simultaneous_half_width(curve.band, curve.delta,
                                                            summary.size(), result.samples);
    result.strategy = to_string(strategy);
    result.criterion = criterion.name();
    for (std::size_t t = 0; t < terminal_tags.size() && t < result.terminals.size(); ++t) {
        result.terminals[t] = terminal_tags[t];
    }
    result.peak_rss_bytes = peak_rss_bytes();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    if (report != nullptr) {
        if (report->stop_trajectory.empty() ||
            report->stop_trajectory.back().samples != result.samples) {
            report->stop_trajectory.push_back({result.samples, required});
        }
        report->value = result.points.back().estimate;
        report->samples = result.samples;
        report->successes = last.successes;
        report->strategy = result.strategy;
        report->criterion = result.criterion;
        report->seed = seed;
        report->workers = k;
        report->terminals = terminal_histogram(result.terminals);
        report->collector = collector.stats();
        report->worker_stats.clear();
        for (std::size_t w = 0; w < k; ++w) {
            // In curve mode streams are per path; stream id w stands for the
            // worker's family {w, w+k, w+2k, ...}.
            report->worker_stats.push_back(
                telemetry::WorkerStats{w, w, generated[w], accepted[w]});
        }
        report->curve = {result.band, result.simultaneous_eps, result.points};
        if (coverage) report->coverage = result.coverage;
    }
    return result;
}

} // namespace slimsim::sim
