// Qualitative statistical analysis: sequential hypothesis testing.
//
// The paper (Sec. II-A) distinguishes qualitative analysis — "determining
// whether a certain property holds or not", generally by hypothesis testing
// — from the quantitative estimation its tool focuses on. This runner adds
// the qualitative side with Wald's SPRT: it decides
//     H0: P(formula) >= threshold + indifference   vs.
//     H1: P(formula) <= threshold - indifference
// with error probability delta for both errors, typically needing far fewer
// paths than estimation to the same confidence.
#pragma once

#include "sim/path_generator.hpp"

namespace slimsim::sim {

enum class HypothesisVerdict : std::int8_t {
    AcceptAbove = +1,  // evidence that P >= threshold
    AcceptBelow = -1,  // evidence that P <= threshold
    Inconclusive = 0,  // sample budget exhausted inside the indifference region
};

[[nodiscard]] std::string to_string(HypothesisVerdict v);

struct HypothesisResult {
    HypothesisVerdict verdict = HypothesisVerdict::Inconclusive;
    std::size_t samples = 0;
    std::size_t successes = 0;
    double threshold = 0.0;
    double indifference = 0.0;
    double delta = 0.0;
    double wall_seconds = 0.0;
    std::string strategy;

    [[nodiscard]] std::string to_string() const;
};

struct HypothesisOptions {
    double indifference = 0.01;
    double delta = 0.01;
    std::size_t max_samples = 10'000'000;
    SimOptions sim;
};

/// Tests whether P(formula) exceeds `threshold` under the given strategy.
/// Deterministic in `seed`. When `report` is non-null the sampling
/// statistics (samples, terminal histogram, SPRT trajectory) are recorded.
[[nodiscard]] HypothesisResult test_hypothesis(const eda::Network& net,
                                               const PathFormula& formula,
                                               StrategyKind strategy, double threshold,
                                               std::uint64_t seed,
                                               const HypothesisOptions& options = {},
                                               telemetry::RunReport* report = nullptr);

} // namespace slimsim::sim
