// Discrete-event path generation (paper, Sec. II-E / III).
//
// A path alternates timed and discrete transitions. Each iteration:
//   1. consult the formula monitor at the current instant;
//   2. compute the invariant horizon H; strategies resolve delays within H
//      (within the remaining formula time when H is unbounded);
//   3. sample the Markovian race (one exponential per process in a rate
//      location) and ask the strategy for a (delay, candidate) choice;
//   4. fire whichever comes first (ties broken by a fair coin). Formula
//      satisfaction/refutation is monitored *continuously* along every
//      elapse (goals may depend on clocks and continuous variables).
// Paths end when the formula is decided, or with a deadlock (no discrete
// step can ever happen again; the monitor then decides on the frozen
// remainder) or a timelock (an invariant expires with nothing enabled;
// configurable: falsify or error, Sec. III-D).
#pragma once

#include <array>

#include "sim/observe.hpp"
#include "sim/property.hpp"
#include "sim/run_control.hpp"
#include "sim/strategy.hpp"
#include "sim/trace.hpp"
#include "support/journal.hpp"
#include "support/metrics.hpp"
#include "support/telemetry.hpp"
#include "support/tracer/tracer.hpp"

namespace slimsim::sim {

class CoverageShard;

/// What to do when a path gets stuck (paper, Sec. III-D).
enum class StuckPolicy : std::uint8_t { Falsify, Error };

/// What happens to the strategy's scheduled delay when a Markovian
/// transition preempts it: Restart (re-ask the strategy; default) or
/// Continue (keep the scheduled absolute time if still feasible).
enum class MemoryPolicy : std::uint8_t { Restart, Continue };

struct SimOptions {
    StuckPolicy deadlock = StuckPolicy::Falsify;
    StuckPolicy timelock = StuckPolicy::Falsify;
    MemoryPolicy memory = MemoryPolicy::Restart;
    /// Bound on discrete steps per path; exceeding it indicates a Zeno model
    /// and raises an error.
    std::size_t max_steps = 1'000'000;
    /// Optional telemetry sink; when null (default) or disabled, path
    /// generation pays a single branch per event. Counters recorded:
    /// sim.paths, sim.steps, sim.markovian_steps, sim.strategy_steps,
    /// sim.pure_delays; histogram: sim.steps_per_path.
    telemetry::Recorder* recorder = nullptr;
    /// Optional execution-trace lane; when null (default) path generation
    /// pays a single branch per event. Spans recorded: sim.path (whole
    /// path), sim.delay_sample (the Markovian race), sim.strategy_choose;
    /// instants: sim.fire_markovian, sim.fire_strategy (docs/tracing.md).
    tracer::Lane* trace_lane = nullptr;
    /// Witness capture and progress streaming; acted on by the estimation
    /// runners (the path generator itself ignores both).
    WitnessOptions witness;
    ProgressOptions progress;
    /// Coverage profiling (sim/coverage.hpp). `coverage` carries the user's
    /// request to the estimation runners, which create per-worker shards,
    /// switch to per-path RNG streams and set `coverage_shard`; a generator
    /// with a null shard (default) pays one branch per event.
    bool coverage = false;
    CoverageShard* coverage_shard = nullptr;
    /// Run hardening — budgets, interruption, checkpoint/resume, fault
    /// policy (sim/run_control.hpp). Carries the user's request to the
    /// estimation runners; the path generator itself ignores it.
    RunControlOptions control;
    /// Optional live metrics registry (support/metrics.hpp, docs/
    /// observability.md); when null (default) the generator pays one branch
    /// per event. The runners set `metrics_shard` to the worker index so
    /// concurrent generators never share a counter cache line; the shard
    /// must be < metrics->shards().
    metrics::Registry* metrics = nullptr;
    std::size_t metrics_shard = 0;
    /// Optional structured run journal (support/journal.hpp, docs/
    /// observability.md); acted on by the estimation runners (lifecycle,
    /// checkpoint, quarantine and stop events) — the path generator itself
    /// ignores it, so the hot loop pays nothing.
    journal::Journal* journal = nullptr;
};

enum class PathTerminal : std::uint8_t {
    Goal,      // formula satisfied
    TimeBound, // refuted at the time bound (nothing more could happen)
    Refuted,   // refuted strictly before the bound (Until/Globally violation)
    Deadlock,  // no discrete step can ever happen again
    Timelock,  // an invariant expired with nothing enabled
    Error,     // the path threw and FaultPolicy::Tolerate quarantined it
};
inline constexpr std::size_t kPathTerminalCount = 6;

[[nodiscard]] std::string to_string(PathTerminal t);

/// Terminal counts as a named histogram for run reports (all bins, in enum
/// order, including empty ones so documents are shape-stable).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
terminal_histogram(const std::array<std::size_t, kPathTerminalCount>& terminals);

struct PathOutcome {
    bool satisfied = false;
    PathTerminal terminal = PathTerminal::TimeBound;
    double end_time = 0.0;
    std::size_t steps = 0;
};

class PathGenerator {
public:
    /// `strategy` must outlive the generator; it is shared across paths
    /// (strategies are stateless apart from Input callbacks).
    PathGenerator(const eda::Network& net, const PathFormula& formula,
                  Strategy& strategy, SimOptions options = {});

    /// Simulates one path.
    [[nodiscard]] PathOutcome run(Rng& rng) const { return run_impl(rng, nullptr); }

    /// Simulates one path, recording every step into `trace`.
    [[nodiscard]] PathOutcome run_traced(Rng& rng, Trace& trace) const {
        return run_impl(rng, &trace);
    }

    /// Stepping interface for advanced drivers (importance splitting):
    /// advances `state` by exactly one simulation iteration — one discrete
    /// step, one pure delay, or a final elapse deciding the formula. Returns
    /// the outcome once the path has ended, nullopt while it continues.
    /// `steps` counts discrete steps (Zeno guard). Uses the Restart memory
    /// policy regardless of options.
    [[nodiscard]] std::optional<PathOutcome> step(eda::NetworkState& state, Rng& rng,
                                                  std::size_t& steps) const;

    [[nodiscard]] const eda::Network& network() const { return net_; }
    [[nodiscard]] const PathFormula& formula() const { return formula_; }

private:
    enum class Verdict : std::uint8_t { Undecided, Satisfied, Refuted };
    struct MonitorResult {
        Verdict verdict = Verdict::Undecided;
        double at = 0.0; // delay (relative to the current instant) of the decision
    };

    [[nodiscard]] PathOutcome run_impl(Rng& rng, Trace* trace) const;
    /// One simulation iteration; shared by run_impl and step().
    [[nodiscard]] std::optional<PathOutcome> iterate(eda::NetworkState& s, Rng& rng,
                                                     std::size_t& steps, Trace* trace,
                                                     std::optional<double>* sched_abs) const;
    /// Formula verdict at the current instant.
    [[nodiscard]] MonitorResult instant_verdict(const eda::NetworkState& s) const;
    /// goal / hold at the current instant (compiled programs, or the
    /// reference interpreter when the network is in reference mode).
    [[nodiscard]] bool goal_holds(const eda::NetworkState& s) const;
    [[nodiscard]] bool hold_holds(const eda::NetworkState& s) const;
    /// Formula verdict along the elapse segment (0, d] from the current
    /// state (constant derivatives; solved exactly).
    [[nodiscard]] MonitorResult elapse_verdict(const eda::NetworkState& s, double d) const;
    /// net_.elapse with the elapsed sojourn reported to the coverage shard
    /// (which advances its model-time path clock; occupancy is credited
    /// when a process leaves a mode).
    void advance(eda::NetworkState& s, double d) const;

    const eda::Network& net_;
    const PathFormula& formula_;
    Strategy& strategy_;
    SimOptions options_;
    CoverageShard* cov_ = nullptr;
    /// Formula atoms compiled once (identity bindings: property atoms use
    /// global names). Null when the network runs the reference interpreter.
    expr::ProgramPtr goal_prog_;
    expr::ProgramPtr hold_prog_;
    /// Per-generator simulation buffers (one generator per worker); mutable
    /// because run() is logically const — the scratch only caches.
    mutable eda::SimScratch scratch_;
    // Telemetry instruments, resolved once at construction (null when off).
    telemetry::Counter* c_paths_ = nullptr;
    telemetry::Counter* c_steps_ = nullptr;
    telemetry::Counter* c_markovian_ = nullptr;
    telemetry::Counter* c_strategy_ = nullptr;
    telemetry::Counter* c_delays_ = nullptr;
    telemetry::Counter* c_interned_ = nullptr;
    /// Interner size already reported to c_interned_ (the counter receives
    /// only the per-path growth, so its total is the table size).
    mutable std::size_t interned_reported_ = 0;
    telemetry::Histogram* h_steps_ = nullptr;
    // Live metrics instruments, resolved once at construction (null when
    // off); mc_shard_ is the worker's cell index in every instrument.
    std::size_t mc_shard_ = 0;
    metrics::Counter* mc_started_ = nullptr;
    metrics::Counter* mc_completed_ = nullptr;
    metrics::Counter* mc_steps_ = nullptr;
    metrics::Counter* mc_fire_markov_ = nullptr;
    metrics::Counter* mc_fire_strategy_ = nullptr;
    metrics::Counter* mc_fire_delay_ = nullptr;
    metrics::Histogram* mh_path_seconds_ = nullptr;
    // Trace lane + interned event names, resolved once (lane null when off).
    tracer::Lane* lane_ = nullptr;
    tracer::NameId n_path_ = tracer::kNoName;
    tracer::NameId n_delay_ = tracer::kNoName;
    tracer::NameId n_choose_ = tracer::kNoName;
    tracer::NameId n_fire_markov_ = tracer::kNoName;
    tracer::NameId n_fire_strategy_ = tracer::kNoName;
    tracer::NameId n_arg_steps_ = tracer::kNoName;
    tracer::NameId n_arg_count_ = tracer::kNoName;
};

} // namespace slimsim::sim
