// Sequential Monte Carlo estimation runner.
#pragma once

#include <array>

#include "sim/path_generator.hpp"
#include "sim/witness.hpp"
#include "stat/curve.hpp"
#include "stat/generators.hpp"

namespace slimsim::sim {

struct EstimationResult {
    double estimate = 0.0;
    std::size_t samples = 0;
    std::size_t successes = 0;
    double wall_seconds = 0.0;
    std::size_t peak_rss_bytes = 0;
    std::string strategy;
    std::string criterion;
    /// How each path terminated (indexed by PathTerminal).
    std::array<std::size_t, kPathTerminalCount> terminals{};
    /// Captured witness paths (empty unless SimOptions::witness asks for
    /// them): first K accepting then first K non-accepting, in accepted
    /// order — deterministic in (seed, workers).
    std::vector<Witness> witnesses;
    /// Coverage profile over the accepted paths (enabled only when
    /// SimOptions::coverage asks for it). Coverage runs use per-path RNG
    /// streams, so the profile — and the estimate — is byte-identical for
    /// every worker count at a fixed seed (sim/coverage.hpp).
    telemetry::CoverageReport coverage;
    /// Run hardening (docs/robustness.md): how the run ended. Converged
    /// unless a budget, interrupt or the fault-error budget stopped it —
    /// then the estimate above is the partial result at `samples`.
    RunStatus status = RunStatus::Converged;
    std::string stop_cause; // "" when converged
    /// Half-width actually guaranteed at the accepted sample count.
    double achieved_half_width = 0.0;
    /// Accepted PathTerminal::Error samples (FaultPolicy::Tolerate) and
    /// their quarantined diagnostics (first kMaxQuarantinedErrors).
    std::uint64_t path_errors = 0;
    std::vector<std::string> error_log;

    [[nodiscard]] std::string to_string() const;
};

/// Estimates P( <> [0,u] goal ) by sequential Monte Carlo until the stopping
/// criterion is met. Deterministic in `seed`. When `report` is non-null the
/// sampling statistics (samples, terminals, worker entry, stop-criterion
/// trajectory) are recorded into it; identity fields (mode, model, phases)
/// are the caller's responsibility — run_analysis() fills them.
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        Strategy& strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options,
                                        telemetry::RunReport* report);

/// Thin wrapper over the reporting overload (no report).
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        Strategy& strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options = {});

/// Convenience overload constructing the strategy from its kind.
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        StrategyKind strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options = {},
                                        telemetry::RunReport* report = nullptr);

/// Multi-bound curve estimation: one shared path set serves a whole grid of
/// time bounds (the paper's Fig. 5 workload).
struct CurveOptions {
    /// Strictly ascending bounds; each must lie in (0, property.bound].
    /// Paths are simulated to u_max = bounds.back(): the curve is the
    /// first-hit distribution under the u_max-horizon scheduler.
    std::vector<double> bounds;
    /// Simultaneous-confidence construction over the grid.
    stat::BandKind band = stat::BandKind::DKW;
    /// 1 - confidence of the simultaneous band (reporting only; build the
    /// stop criterion with stat::per_bound_delta(band, delta, K) yourself).
    double delta = 0.05;
};

struct CurveResult {
    std::vector<telemetry::CurvePoint> points; // one per grid bound, ascending
    std::size_t samples = 0;                   // shared by every bound
    std::string band;
    /// Achieved half-width of the simultaneous confidence band at `samples`.
    double simultaneous_eps = 0.0;
    std::string strategy;
    std::string criterion;
    std::array<std::size_t, kPathTerminalCount> terminals{};
    double wall_seconds = 0.0;
    std::size_t peak_rss_bytes = 0;
    /// Coverage profile over the shared path set (enabled only when
    /// SimOptions::coverage asks for it).
    telemetry::CoverageReport coverage;
    /// Run hardening (docs/robustness.md); for curve runs the achieved
    /// half-width is the simultaneous band half-width at `samples`.
    RunStatus status = RunStatus::Converged;
    std::string stop_cause;
    double achieved_half_width = 0.0;
    std::uint64_t path_errors = 0;
    std::vector<std::string> error_log;

    [[nodiscard]] std::string to_string() const;
};

/// Throws Error unless `property` is plain timed reachability (Reach with
/// lo == 0) and the grid is strictly ascending within (0, property.bound].
void validate_curve_request(const TimedReachability& property, const CurveOptions& curve);

/// Estimates the whole curve { P( <> [0,u_i] goal ) } from ONE path set:
/// each path runs to u_max = bounds.back() and its first goal-hit time
/// decides every bound at once (monotonicity), so a K-point curve costs one
/// run instead of K. Path j always simulates with the RNG stream
/// Rng(seed).split(j) — per-PATH streams, so curve results are
/// byte-identical for every worker count, not just deterministic at a fixed
/// one. Witness capture is not supported in curve mode (SimOptions::witness
/// is ignored).
[[nodiscard]] CurveResult estimate_curve(const eda::Network& net,
                                         const TimedReachability& property,
                                         Strategy& strategy,
                                         const stat::StopCriterion& criterion,
                                         const CurveOptions& curve, std::uint64_t seed,
                                         const SimOptions& options = {},
                                         telemetry::RunReport* report = nullptr);

/// Convenience overload constructing the strategy from its kind.
[[nodiscard]] CurveResult estimate_curve(const eda::Network& net,
                                         const TimedReachability& property,
                                         StrategyKind strategy,
                                         const stat::StopCriterion& criterion,
                                         const CurveOptions& curve, std::uint64_t seed,
                                         const SimOptions& options = {},
                                         telemetry::RunReport* report = nullptr);

/// Shared by the sequential and parallel curve runners: per-bound points of
/// a finished CurveSummary, and the common report fill.
[[nodiscard]] std::vector<telemetry::CurvePoint> curve_points(
    const stat::CurveSummary& summary);

/// Shared run-hardening plumbing (all four estimation runners).

/// Appends "path N: what" to `log` unless it already holds
/// kMaxQuarantinedErrors messages.
void quarantine_error(std::vector<std::string>& log, std::uint64_t path_index,
                      const char* what);

/// Builds the checkpoint for the current accepted state; `terminals` is the
/// result's terminal array, `curve_bounds`/`curve_tree` stay empty for
/// scalar estimation.
[[nodiscard]] RunCheckpoint make_run_checkpoint(
    const RunControlOptions& control, std::uint64_t seed, const std::string& property_text,
    const std::string& strategy_name, const std::string& criterion_name,
    std::uint64_t cursor, std::uint64_t successes, std::uint64_t total_steps,
    const std::array<std::size_t, kPathTerminalCount>& terminals,
    const std::vector<std::string>& error_log, const std::vector<double>& curve_bounds = {},
    const std::vector<std::uint64_t>& curve_tree = {});

/// Fills the report's run_status section from the result fields (no-op when
/// `report` is null).
void fill_run_status(telemetry::RunReport* report, RunStatus status,
                     const std::string& stop_cause, double achieved_half_width,
                     std::uint64_t path_errors, const std::vector<std::string>& error_log);

} // namespace slimsim::sim
