// Sequential Monte Carlo estimation runner.
#pragma once

#include <array>

#include "sim/path_generator.hpp"
#include "sim/witness.hpp"
#include "stat/generators.hpp"

namespace slimsim::sim {

struct EstimationResult {
    double estimate = 0.0;
    std::size_t samples = 0;
    std::size_t successes = 0;
    double wall_seconds = 0.0;
    std::size_t peak_rss_bytes = 0;
    std::string strategy;
    std::string criterion;
    /// How each path terminated (indexed by PathTerminal).
    std::array<std::size_t, kPathTerminalCount> terminals{};
    /// Captured witness paths (empty unless SimOptions::witness asks for
    /// them): first K accepting then first K non-accepting, in accepted
    /// order — deterministic in (seed, workers).
    std::vector<Witness> witnesses;

    [[nodiscard]] std::string to_string() const;
};

/// Estimates P( <> [0,u] goal ) by sequential Monte Carlo until the stopping
/// criterion is met. Deterministic in `seed`. When `report` is non-null the
/// sampling statistics (samples, terminals, worker entry, stop-criterion
/// trajectory) are recorded into it; identity fields (mode, model, phases)
/// are the caller's responsibility — run_analysis() fills them.
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        Strategy& strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options,
                                        telemetry::RunReport* report);

/// Thin wrapper over the reporting overload (no report).
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        Strategy& strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options = {});

/// Convenience overload constructing the strategy from its kind.
[[nodiscard]] EstimationResult estimate(const eda::Network& net,
                                        const TimedReachability& property,
                                        StrategyKind strategy,
                                        const stat::StopCriterion& criterion,
                                        std::uint64_t seed, const SimOptions& options = {},
                                        telemetry::RunReport* report = nullptr);

} // namespace slimsim::sim
