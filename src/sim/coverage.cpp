#include "sim/coverage.hpp"

#include <algorithm>

namespace slimsim::sim {

CoverageShard::CoverageShard(const eda::ElementIndex& index)
    : index_(&index),
      mode_visits_(index.mode_count(), 0),
      occupancy_(index.mode_count(), 0.0),
      fires_(index.transition_count(), 0) {}

void CoverageShard::begin_path(const eda::NetworkState& s) {
    path_time_ = 0.0;
    cur_mode_.resize(s.locations.size());
    entered_at_.assign(s.locations.size(), 0.0);
    for (std::size_t p = 0; p < s.locations.size(); ++p) {
        const std::uint32_t id =
            index_->mode_id(static_cast<eda::ProcessId>(p), s.locations[p]);
        touch_mode(id);
        ++mode_visits_[id];
        cur_mode_[p] = id;
    }
}

void CoverageShard::on_step(const eda::StepInfo& info) {
    for (const auto& [p, t] : info.fired) {
        const std::uint32_t tid = index_->transition_id(p, t);
        if (fires_[tid] == 0) touched_fires_.push_back(tid);
        ++fires_[tid];
        const std::uint32_t dst = index_->transition_dst_mode(tid);
        touch_mode(dst);
        ++mode_visits_[dst];
        // The left mode was touched when it was entered (its visit count is
        // non-zero), so crediting its sojourn needs no touch here.
        const auto pi = static_cast<std::size_t>(p);
        occupancy_[cur_mode_[pi]] += path_time_ - entered_at_[pi];
        cur_mode_[pi] = dst;
        entered_at_[pi] = path_time_;
    }
}

void CoverageShard::on_decision(std::span<const eda::Candidate> candidates,
                                const ScheduledChoice& choice) {
    // Consecutive decisions usually see the same candidate set; comparing
    // the raw (unsorted) alternative sequence against the previous call
    // skips the sort/dedup/lookup entirely on the hot path.
    raw_scratch_.clear();
    for (const auto& c : candidates) raw_scratch_.push_back(index_->alternative_id(c));
    std::uint32_t cp;
    if (last_cp_ != kNoChoicePoint && raw_scratch_ == last_raw_) {
        cp = last_cp_;
    } else {
        key_scratch_ = raw_scratch_;
        std::sort(key_scratch_.begin(), key_scratch_.end());
        key_scratch_.erase(std::unique(key_scratch_.begin(), key_scratch_.end()),
                           key_scratch_.end());
        auto it = cp_by_key_.find(key_scratch_);
        if (it == cp_by_key_.end()) {
            const auto fresh = static_cast<std::uint32_t>(cp_keys_.size());
            cp_keys_.push_back(key_scratch_);
            it = cp_by_key_.emplace(key_scratch_, fresh).first;
        }
        cp = it->second;
        last_cp_ = cp;
        std::swap(last_raw_, raw_scratch_);
    }
    // last_raw_ holds the current sequence on both paths (the fast path
    // only hits when raw_scratch_ == last_raw_).
    const std::uint32_t alt =
        choice.candidate >= 0 ? last_raw_[static_cast<std::size_t>(choice.candidate)]
                              : kDelayAlternative;
    for (auto& d : decisions_) {
        if (d.choice_point == cp && d.alternative == alt) {
            ++d.count;
            return;
        }
    }
    decisions_.push_back({cp, alt, 1});
}

void CoverageShard::end_path() {
    for (std::size_t p = 0; p < cur_mode_.size(); ++p) {
        occupancy_[cur_mode_[p]] += path_time_ - entered_at_[p];
    }
    for (const std::uint32_t id : touched_modes_) {
        modes_flat_.push_back({id, mode_visits_[id], occupancy_[id]});
        mode_visits_[id] = 0;
        occupancy_[id] = 0.0;
    }
    for (const std::uint32_t id : touched_fires_) {
        fires_flat_.push_back({id, fires_[id]});
        fires_[id] = 0;
    }
    decisions_flat_.insert(decisions_flat_.end(), decisions_.begin(), decisions_.end());
    path_ends_.push_back({static_cast<std::uint32_t>(modes_flat_.size()),
                          static_cast<std::uint32_t>(fires_flat_.size()),
                          static_cast<std::uint32_t>(decisions_flat_.size())});
    touched_modes_.clear();
    touched_fires_.clear();
    decisions_.clear();
}

CoverageAccumulator::CoverageAccumulator(const eda::ElementIndex& index)
    : index_(&index),
      visits_(index.mode_count(), 0),
      occupancy_(index.mode_count(), 0.0),
      fires_(index.transition_count(), 0),
      covered_(index.mode_count() + index.transition_count(), 0) {}

std::vector<std::uint32_t>
CoverageAccumulator::intern_choice_points(const CoverageShard& shard) {
    std::vector<std::uint32_t> translation;
    translation.reserve(shard.choice_point_count());
    for (std::uint32_t cp = 0; cp < shard.choice_point_count(); ++cp) {
        const auto [it, fresh] = cp_ids_.try_emplace(
            shard.choice_point_key(cp), static_cast<std::uint32_t>(cp_alts_.size()));
        if (fresh) cp_alts_.emplace_back();
        translation.push_back(it->second);
    }
    return translation;
}

void CoverageAccumulator::merge_path(const CoverageShard& shard, std::size_t local_path,
                                     std::span<const std::uint32_t> cp_translation) {
    const std::uint64_t covered_before = covered_count_;
    for (const auto& m : shard.path_modes(local_path)) {
        visits_[m.id] += m.visits;
        occupancy_[m.id] += m.occupancy;
        if (covered_[m.id] == 0) {
            covered_[m.id] = 1;
            ++covered_count_;
        }
    }
    const std::size_t mode_count = index_->mode_count();
    for (const auto& f : shard.path_fires(local_path)) {
        fires_[f.id] += f.count;
        if (covered_[mode_count + f.id] == 0) {
            covered_[mode_count + f.id] = 1;
            ++covered_count_;
        }
    }
    for (const auto& d : shard.path_decisions(local_path)) {
        auto& alts = cp_alts_[cp_translation[d.choice_point]];
        const auto pos = std::lower_bound(
            alts.begin(), alts.end(), d.alternative,
            [](const auto& entry, std::uint32_t alt) { return entry.first < alt; });
        if (pos != alts.end() && pos->first == d.alternative) {
            pos->second += d.count;
        } else {
            alts.insert(pos, {d.alternative, d.count});
        }
    }
    ++paths_;
    if (covered_count_ > covered_before) saturation_.push_back({paths_, covered_count_});
}

telemetry::CoverageReport CoverageAccumulator::report() const {
    telemetry::CoverageReport out;
    out.enabled = true;
    out.paths = paths_;
    out.modes.reserve(index_->mode_count());
    for (std::uint32_t id = 0; id < index_->mode_count(); ++id) {
        out.modes.push_back({index_->mode_name(id), visits_[id], occupancy_[id]});
    }
    out.transitions.reserve(index_->transition_count());
    for (std::uint32_t id = 0; id < index_->transition_count(); ++id) {
        out.transitions.push_back(
            {index_->transition_name(id), fires_[id], index_->transition_is_error(id)});
    }
    auto alternative_name = [&](std::uint32_t alt) -> std::string {
        if (alt == kDelayAlternative) return "(delay)";
        return index_->alternative_name(alt);
    };
    for (const auto& [key, id] : cp_ids_) {
        telemetry::CoverageChoicePoint cp;
        for (const std::uint32_t alt : key) {
            if (!cp.key.empty()) cp.key += " | ";
            cp.key += alternative_name(alt);
        }
        for (const auto& [alt, count] : cp_alts_[id]) {
            cp.decisions += count;
            cp.alternatives.push_back({alternative_name(alt), count});
        }
        out.choice_points.push_back(std::move(cp));
    }
    out.saturation = saturation_;
    // Close the series: the terminal point states how many paths the run
    // completed even when the last paths covered nothing new.
    if (out.saturation.empty() || out.saturation.back().paths != paths_) {
        out.saturation.push_back({paths_, covered_count_});
    }
    return out;
}

telemetry::CoverageReport merge_coverage(std::span<const CoverageShard* const> shards,
                                         std::span<const std::uint64_t> accepted) {
    SLIMSIM_ASSERT(!shards.empty() && shards.size() == accepted.size());
    CoverageAccumulator acc(shards.front()->index());
    std::vector<std::vector<std::uint32_t>> translations;
    translations.reserve(shards.size());
    for (const CoverageShard* shard : shards) {
        translations.push_back(acc.intern_choice_points(*shard));
    }
    std::uint64_t total = 0;
    for (const std::uint64_t a : accepted) total += a;
    const auto k = static_cast<std::uint64_t>(shards.size());
    for (std::uint64_t j = 0; j < total; ++j) {
        const auto w = static_cast<std::size_t>(j % k);
        const std::uint64_t local = j / k;
        SLIMSIM_ASSERT(local < accepted[w] && local < shards[w]->path_count());
        acc.merge_path(*shards[w], static_cast<std::size_t>(local), translations[w]);
    }
    return acc.report();
}

} // namespace slimsim::sim
