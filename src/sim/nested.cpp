#include "sim/nested.hpp"

#include <chrono>
#include <sstream>
#include <functional>
#include <unordered_map>

#include "expr/eval.hpp"
#include "stat/generators.hpp"

namespace slimsim::sim {

// --- StateFormula construction ---------------------------------------------

StateFormula StateFormula::atom(expr::ExprPtr e) {
    SLIMSIM_ASSERT(e != nullptr);
    StateFormula f;
    f.kind = Kind::Atom;
    f.atom_ = std::move(e);
    return f;
}

StateFormula StateFormula::probability_at_least(PathFormula path, double threshold,
                                                double indifference, double delta) {
    StateFormula f;
    f.kind = Kind::Prob;
    f.inner_ = std::make_shared<PathFormula>(std::move(path));
    f.threshold_ = threshold;
    f.indifference_ = indifference;
    f.delta_ = delta;
    return f;
}

StateFormula StateFormula::conjunction(StateFormula a, StateFormula b) {
    StateFormula f;
    f.kind = Kind::And;
    f.a_ = std::make_shared<StateFormula>(std::move(a));
    f.b_ = std::make_shared<StateFormula>(std::move(b));
    return f;
}

StateFormula StateFormula::disjunction(StateFormula a, StateFormula b) {
    StateFormula f;
    f.kind = Kind::Or;
    f.a_ = std::make_shared<StateFormula>(std::move(a));
    f.b_ = std::make_shared<StateFormula>(std::move(b));
    return f;
}

StateFormula StateFormula::negation(StateFormula a) {
    StateFormula f;
    f.kind = Kind::Not;
    f.a_ = std::make_shared<StateFormula>(std::move(a));
    return f;
}

bool StateFormula::has_nested() const {
    switch (kind) {
    case Kind::Atom: return false;
    case Kind::Prob: return true;
    case Kind::Not: return a_->has_nested();
    case Kind::And:
    case Kind::Or: return a_->has_nested() || b_->has_nested();
    }
    return false;
}

// --- checker -----------------------------------------------------------------

std::string NestedResult::to_string() const {
    std::ostringstream os;
    os << "p^ = " << estimate << " (" << samples << " outer paths, " << inner_tests
       << " inner tests / " << memo_hits << " memo hits, " << inner_paths
       << " inner paths, " << wall_seconds << " s)";
    return os.str();
}

namespace {

bool reads_timed(const expr::Expr& e, const slim::InstanceModel& m) {
    if (e.kind == expr::ExprKind::Var) return m.vars[e.slot].type.is_timed();
    return (e.a && reads_timed(*e.a, m)) || (e.b && reads_timed(*e.b, m)) ||
           (e.c && reads_timed(*e.c, m));
}

/// Discrete projection of a state (locations + non-timed values + active).
class KeyMaker {
public:
    explicit KeyMaker(const slim::InstanceModel& m) {
        for (VarId v = 0; v < m.vars.size(); ++v) {
            if (!m.vars[v].type.is_timed()) discrete_vars_.push_back(v);
        }
    }

    [[nodiscard]] eda::DiscreteKey key_of(const eda::NetworkState& s) const {
        eda::DiscreteKey k;
        k.locations = s.locations;
        k.values.reserve(discrete_vars_.size());
        for (const VarId v : discrete_vars_) k.values.push_back(s.values[v]);
        k.active = s.active;
        return k;
    }

private:
    std::vector<VarId> discrete_vars_;
};

} // namespace

class NestedChecker {
public:
    NestedChecker(const eda::Network& net, const NestedOptions& options,
                  std::uint64_t seed)
        : net_(net), options_(options), master_(seed), keys_(net.model()) {}

    NestedResult run(const StateFormula& phi, double bound) {
        const auto start = std::chrono::steady_clock::now();
        ensure_untimed_model();
        check_formula(phi);

        // Dummy goal so the PathGenerator drives paths to the bound; the
        // state formula is evaluated at every discrete instant.
        PathFormula driver;
        driver.kind = FormulaKind::Reach;
        driver.goal = expr::make_bool(false);
        driver.bound = bound;
        driver.text = "<nested driver>";
        const auto strat = make_strategy(options_.strategy);
        const PathGenerator gen(net_, driver, *strat, options_.sim);

        const stat::ChernoffHoeffding criterion(options_.delta, options_.eps);
        const std::size_t n = *criterion.fixed_sample_count();
        Rng rng = master_.split(0);
        std::size_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            eda::NetworkState s = net_.initial_state();
            std::size_t steps = 0;
            for (;;) {
                if (s.time <= bound && eval_formula(phi, s)) {
                    ++hits;
                    break;
                }
                if (const auto out = gen.step(s, rng, steps)) break;
            }
        }
        result_.estimate = static_cast<double>(hits) / static_cast<double>(n);
        result_.samples = n;
        result_.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                .count();
        return result_;
    }

private:
    void ensure_untimed_model() const {
        const auto& m = net_.model();
        for (const auto& p : m.processes) {
            for (const auto& loc : p.locations) {
                if (loc.invariant != nullptr) {
                    throw Error("nested probabilistic operators require an untimed "
                                "model (process `" +
                                p.name + "` has invariants)");
                }
            }
            for (const auto& t : p.transitions) {
                if (t.guard == nullptr) continue;
                // Check against the process's bindings.
                const std::function<bool(const expr::Expr&)> timed =
                    [&](const expr::Expr& e) -> bool {
                    if (e.kind == expr::ExprKind::Var) {
                        return m.vars[(*p.bindings)[e.slot]].type.is_timed();
                    }
                    return (e.a && timed(*e.a)) || (e.b && timed(*e.b)) ||
                           (e.c && timed(*e.c));
                };
                if (timed(*t.guard)) {
                    throw Error("nested probabilistic operators require an untimed "
                                "model (process `" +
                                p.name + "` has guards over clocks)");
                }
            }
        }
    }

    void check_formula(const StateFormula& phi) const {
        const auto& m = net_.model();
        switch (phi.kind) {
        case StateFormula::Kind::Atom:
            if (reads_timed(*phi.atom_, m)) {
                throw Error("nested checking requires discrete-state atoms");
            }
            return;
        case StateFormula::Kind::Prob:
            if (reads_timed(*phi.inner_->goal, m) ||
                (phi.inner_->hold && reads_timed(*phi.inner_->hold, m))) {
                throw Error("the nested path formula must use discrete-state atoms");
            }
            return;
        case StateFormula::Kind::Not:
            check_formula(*phi.a_);
            return;
        case StateFormula::Kind::And:
        case StateFormula::Kind::Or:
            check_formula(*phi.a_);
            check_formula(*phi.b_);
            return;
        }
    }

    bool eval_formula(const StateFormula& phi, const eda::NetworkState& s) {
        switch (phi.kind) {
        case StateFormula::Kind::Atom:
            return net_.eval_global(s, *phi.atom_);
        case StateFormula::Kind::Prob:
            return eval_prob(phi, s);
        case StateFormula::Kind::Not:
            return !eval_formula(*phi.a_, s);
        case StateFormula::Kind::And:
            return eval_formula(*phi.a_, s) && eval_formula(*phi.b_, s);
        case StateFormula::Kind::Or:
            return eval_formula(*phi.a_, s) || eval_formula(*phi.b_, s);
        }
        return false;
    }

    bool eval_prob(const StateFormula& phi, const eda::NetworkState& s) {
        auto& memo = memos_[phi.inner_.get()];
        const eda::DiscreteKey key = keys_.key_of(s);
        if (const auto it = memo.find(key); it != memo.end()) {
            ++result_.memo_hits;
            return it->second;
        }
        ++result_.inner_tests;
        // Sub-simulation from this state: an SPRT at the node's threshold.
        // The inner clock starts at 0 (bounds are relative to the query
        // instant); this is sound because the model is untimed.
        eda::NetworkState start = s;
        start.time = 0.0;
        const stat::Sprt sprt(phi.threshold_, phi.indifference_, phi.delta_);
        const auto strat = make_strategy(options_.inner_strategy);
        const PathGenerator gen(net_, *phi.inner_, *strat, options_.sim);
        Rng rng = master_.split(1'000'000 + result_.inner_tests);
        stat::BernoulliSummary summary;
        while (summary.count < options_.inner_max_samples && !sprt.should_stop(summary)) {
            eda::NetworkState copy = start;
            std::size_t steps = 0;
            for (;;) {
                if (const auto out = gen.step(copy, rng, steps)) {
                    summary.add(out->satisfied);
                    break;
                }
            }
        }
        result_.inner_paths += summary.count;
        const int verdict = sprt.verdict(summary);
        if (verdict == 0) {
            throw Error("nested SPRT was inconclusive after " +
                        std::to_string(summary.count) +
                        " paths; widen the indifference region");
        }
        const bool value = verdict > 0;
        memo.emplace(std::move(key), value);
        return value;
    }

    const eda::Network& net_;
    const NestedOptions& options_;
    const Rng master_;
    KeyMaker keys_;
    NestedResult result_;
    std::unordered_map<const void*,
                       std::unordered_map<eda::DiscreteKey, bool, eda::DiscreteKeyHash>>
        memos_;
};

NestedResult estimate_nested(const eda::Network& net, const StateFormula& phi,
                             double bound, std::uint64_t seed,
                             const NestedOptions& options) {
    if (!(bound > 0.0)) throw Error("nested property bound must be positive");
    NestedChecker checker(net, options, seed);
    return checker.run(phi, bound);
}

} // namespace slimsim::sim
