// Strategies for resolving non-determinism (paper, Sec. III-B).
//
// Where the specification under-specifies *when* the next discrete step
// happens, the user-selected strategy decides. All strategies resolve
// under-specification of *choice* (which of several enabled alternatives)
// equiprobably; they differ in how the delay is selected:
//   ASAP        - the first instant any discrete transition is enabled
//                 (urgent semantics; MODES-style)
//   Progressive - uniform over the exact union of enablement intervals
//                 (UPPAAL-SMC-style)
//   Local       - uniform over the invariant horizon only, ignoring guards
//   MaxTime     - wait as long as the invariants allow (finds actionlocks)
//   Input       - delegate to a user callback (interactive / scripted)
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "eda/network.hpp"

namespace slimsim::sim {

enum class StrategyKind : std::uint8_t { Asap, Progressive, Local, MaxTime, Input };

[[nodiscard]] std::string to_string(StrategyKind k);
[[nodiscard]] std::optional<StrategyKind> strategy_from_string(std::string_view name);
/// All automated strategies (everything except Input).
[[nodiscard]] std::span<const StrategyKind> automated_strategies();

/// A scheduling decision: delay for `delay` time units, then fire candidate
/// `candidate` (an index into the candidate span), or nothing if -1 (pure
/// delay; the generator re-evaluates afterwards).
struct ScheduledChoice {
    double delay = 0.0;
    int candidate = -1;
};

/// Observes every resolved scheduling decision (sim/coverage builds its
/// per-choice-point decision histograms through this). The observer sees the
/// candidate span the strategy chose from plus the choice it made; it is only
/// notified for decisions at a real choice point (a non-empty candidate set).
class DecisionObserver {
public:
    virtual ~DecisionObserver() = default;
    virtual void on_decision(std::span<const eda::Candidate> candidates,
                             const ScheduledChoice& choice) = 0;
};

class Strategy {
public:
    virtual ~Strategy() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Chooses a delay (within [0, horizon]) and optionally a candidate
    /// enabled after that delay. Candidates' enablement sets are already
    /// clamped to [0, horizon]. Returns nullopt when the strategy cannot
    /// make progress (no candidate and no useful delay). Non-virtual: the
    /// decision is delegated to choose_impl and, when an observer is
    /// attached, reported to it.
    [[nodiscard]] std::optional<ScheduledChoice>
    choose(const eda::Network& net, const eda::NetworkState& state,
           std::span<const eda::Candidate> candidates, double horizon, Rng& rng) {
        auto choice = choose_impl(net, state, candidates, horizon, rng);
        if (observer_ != nullptr && choice.has_value() && !candidates.empty()) {
            observer_->on_decision(candidates, *choice);
        }
        return choice;
    }

    /// Attaches (or detaches, with nullptr) the decision observer. Not
    /// thread-safe: parallel runners give each worker its own strategy.
    void set_observer(DecisionObserver* observer) { observer_ = observer; }
    [[nodiscard]] DecisionObserver* observer() const { return observer_; }

protected:
    [[nodiscard]] virtual std::optional<ScheduledChoice>
    choose_impl(const eda::Network& net, const eda::NetworkState& state,
                std::span<const eda::Candidate> candidates, double horizon, Rng& rng) = 0;

private:
    DecisionObserver* observer_ = nullptr;
};

/// Callback type of the Input strategy. Receiving the same arguments as
/// Strategy::choose (minus the RNG); used for interactive and scripted runs.
using InputCallback = std::function<std::optional<ScheduledChoice>(
    const eda::Network&, const eda::NetworkState&, std::span<const eda::Candidate>, double)>;

[[nodiscard]] std::unique_ptr<Strategy> make_strategy(StrategyKind kind);
[[nodiscard]] std::unique_ptr<Strategy> make_input_strategy(InputCallback callback);

} // namespace slimsim::sim
