#include "sim/trace.hpp"

#include <sstream>

namespace slimsim::sim {

std::string Trace::to_string() const {
    std::ostringstream os;
    for (const auto& s : steps_) {
        os << "[t=" << s.time << "] " << s.description << '\n';
    }
    if (omitted_ > 0) {
        os << "... (" << omitted_ << " steps omitted: trace byte limit)\n";
    }
    if (finished_) {
        os << "[t=" << end_time_ << "] path ends: " << terminal_ << " ("
           << (satisfied_ ? "satisfied" : "not satisfied") << ")\n";
    }
    return os.str();
}

std::string describe_step(const eda::Network& net, const eda::StepInfo& info) {
    const auto& m = net.model();
    std::ostringstream os;
    bool first = true;
    for (const auto& [pid, t] : info.fired) {
        const auto& p = m.processes[static_cast<std::size_t>(pid)];
        const auto& tr = p.transitions[static_cast<std::size_t>(t)];
        if (!first) os << "; ";
        first = false;
        os << p.name << ": " << p.locations[static_cast<std::size_t>(tr.src)].name << " -> "
           << p.locations[static_cast<std::size_t>(tr.dst)].name;
        if (!tr.label.empty()) os << " [" << tr.label << "]";
        if (tr.markovian()) os << " (rate " << tr.rate << ")";
    }
    if (first) os << "(no transition)";
    return os.str();
}

std::string describe_state(const eda::Network& net, const eda::NetworkState& state,
                           std::size_t max_vars) {
    const auto& m = net.model();
    std::ostringstream os;
    os << "t=" << state.time;
    for (std::size_t p = 0; p < m.processes.size(); ++p) {
        os << ' ' << m.processes[p].name << '@'
           << m.processes[p].locations[static_cast<std::size_t>(state.locations[p])].name;
    }
    std::size_t shown = 0;
    for (std::size_t v = 0; v < m.vars.size() && shown < max_vars; ++v) {
        if (m.vars[v].full_name.find("@timer") != std::string::npos) continue;
        os << ' ' << m.vars[v].full_name << '=' << state.values[v].to_string();
        ++shown;
    }
    return os.str();
}

} // namespace slimsim::sim
