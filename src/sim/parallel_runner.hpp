// Parallel Monte Carlo estimation (paper, Sec. III-C).
//
// k worker threads generate paths independently (worker i simulates with the
// RNG stream split(seed, i)); samples are consumed in *rounds* — one sample
// from every worker per round — via stat::SampleCollector, which removes the
// completion-order bias of naive parallel collection [21] and makes the
// result deterministic in (seed, worker count). The biased first-come
// collection mode is kept for the bias-demonstration bench.
#pragma once

#include "sim/runner.hpp"

namespace slimsim::sim {

enum class CollectionMode : std::uint8_t {
    RoundRobin, // unbiased, deterministic in (seed, workers)
    FirstCome,  // completion-order consumption: biased; for demonstration
};

struct ParallelOptions {
    std::size_t workers = 4;
    CollectionMode collection = CollectionMode::RoundRobin;
    SimOptions sim;
    /// Optional execution tracer: one lane per worker ("worker N") plus a
    /// "collector" lane with round-boundary instant events. Worker lanes
    /// are created in worker order before the threads start, so lane ids
    /// are deterministic. sim.trace_lane is ignored in parallel runs (each
    /// worker gets its own lane).
    tracer::Tracer* tracer = nullptr;
};

/// Estimates P( <> [0,u] goal ) with k parallel workers. Each worker uses
/// its own Strategy instance of the given kind (the Input strategy is not
/// supported in parallel runs). Worker i simulates with RNG stream
/// split(seed, i). When `report` is non-null, sampling statistics are
/// recorded: the terminal histogram and per-worker accepted counts are
/// computed over *accepted* samples and are deterministic in
/// (seed, workers); generated-path counts and collector high-water marks
/// land in the report's runtime section.
[[nodiscard]] EstimationResult estimate_parallel(const eda::Network& net,
                                                 const TimedReachability& property,
                                                 StrategyKind strategy,
                                                 const stat::StopCriterion& criterion,
                                                 std::uint64_t seed,
                                                 const ParallelOptions& options,
                                                 telemetry::RunReport* report);

/// Thin wrapper over the reporting overload (no report).
[[nodiscard]] EstimationResult estimate_parallel(const eda::Network& net,
                                                 const TimedReachability& property,
                                                 StrategyKind strategy,
                                                 const stat::StopCriterion& criterion,
                                                 std::uint64_t seed,
                                                 const ParallelOptions& options = {});

/// Parallel multi-bound curve estimation. Unlike estimate_parallel, RNG
/// streams are per *path*, not per worker: worker w of k simulates paths
/// j = w, w+k, w+2k, ... each with stream split(seed, j), and the collector
/// consumes at sample granularity in global path order (drain_ordered), so
/// the accepted set, the stop point, and hence every curve point are
/// byte-identical for every worker count — a strictly stronger guarantee
/// than estimate_parallel's per-fixed-k determinism. Witness capture and the
/// FirstCome collection mode are not supported in curve mode
/// (ParallelOptions::collection and sim.witness are ignored).
[[nodiscard]] CurveResult estimate_curve_parallel(const eda::Network& net,
                                                  const TimedReachability& property,
                                                  StrategyKind strategy,
                                                  const stat::StopCriterion& criterion,
                                                  const CurveOptions& curve,
                                                  std::uint64_t seed,
                                                  const ParallelOptions& options = {},
                                                  telemetry::RunReport* report = nullptr);

} // namespace slimsim::sim
