#include "sim/witness.hpp"

#include <algorithm>

namespace slimsim::sim {

void WitnessBuffer::offer(std::uint64_t index, const Rng& pre_path_rng,
                          const PathOutcome& outcome) {
    if (per_kind_ == 0) return;
    std::vector<PathSnapshot>& kind = outcome.satisfied ? accepting_ : rejecting_;
    if (kind.size() >= per_kind_) return;
    kind.push_back({index, pre_path_rng, outcome});
}

std::vector<std::pair<std::size_t, PathSnapshot>> select_witness_paths(
    std::span<const WitnessBuffer> buffers,
    std::span<const std::uint64_t> accepted_per_worker, std::size_t per_kind) {
    std::vector<std::pair<std::size_t, PathSnapshot>> out;
    if (per_kind == 0) return out;

    auto pick = [&](bool satisfied) {
        // Merge per-worker candidates in (path index, worker) order — the
        // round-robin acceptance order — dropping unaccepted samples.
        std::vector<std::pair<std::size_t, PathSnapshot>> pool;
        for (std::size_t w = 0; w < buffers.size(); ++w) {
            const auto& kind =
                satisfied ? buffers[w].accepting() : buffers[w].rejecting();
            const std::uint64_t accepted =
                w < accepted_per_worker.size() ? accepted_per_worker[w] : 0;
            for (const PathSnapshot& snap : kind) {
                if (snap.index < accepted) pool.emplace_back(w, snap);
            }
        }
        std::sort(pool.begin(), pool.end(), [](const auto& a, const auto& b) {
            if (a.second.index != b.second.index) return a.second.index < b.second.index;
            return a.first < b.first;
        });
        if (pool.size() > per_kind) pool.resize(per_kind);
        out.insert(out.end(), pool.begin(), pool.end());
    };
    pick(true);
    pick(false);
    return out;
}

std::vector<Witness> replay_witnesses(
    const PathGenerator& replay_gen,
    std::span<const std::pair<std::size_t, PathSnapshot>> selected,
    std::size_t max_bytes) {
    std::vector<Witness> out;
    out.reserve(selected.size());
    std::size_t budget = max_bytes;
    for (const auto& [worker, snap] : selected) {
        Witness w;
        w.worker = worker;
        w.path_index = snap.index;
        w.rng = snap.rng;
        if (max_bytes > 0) w.trace.set_byte_limit(budget);
        Rng rng = snap.rng;
        w.outcome = replay_gen.run_traced(rng, w.trace);
        // Replay must reproduce the recorded outcome exactly.
        SLIMSIM_ASSERT(w.outcome.satisfied == snap.outcome.satisfied &&
                       w.outcome.steps == snap.outcome.steps);
        if (max_bytes > 0) {
            const std::size_t used = w.trace.memory_bytes();
            budget = used >= budget ? 1 : budget - used; // 1: keep the cap hard
        }
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace slimsim::sim
