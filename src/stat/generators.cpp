#include "stat/generators.hpp"

#include <cmath>

#include "stat/curve.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::stat {

namespace {
void check_params(double delta, double epsilon) {
    if (!(delta > 0.0 && delta < 1.0)) {
        throw Error("confidence parameter delta must be in (0,1)");
    }
    if (!(epsilon > 0.0 && epsilon < 1.0)) {
        throw Error("error bound epsilon must be in (0,1)");
    }
}
} // namespace

double StopCriterion::achieved_half_width(const BernoulliSummary&) const { return 0.0; }

bool StopCriterion::should_stop_curve(const CurveSummary& curve) const {
    // Fixed-count criteria depend on the shared count only; one comparison.
    if (const auto n = fixed_sample_count()) return curve.count() >= *n;
    // Adaptive criteria must be satisfied at the loosest bound too.
    for (std::size_t i = 0; i < curve.size(); ++i) {
        if (!should_stop(curve.summary(i))) return false;
    }
    return curve.size() > 0;
}

ChernoffHoeffding::ChernoffHoeffding(double delta, double epsilon)
    : n_(sample_count(delta, epsilon)), delta_(delta) {}

double ChernoffHoeffding::achieved_half_width(const BernoulliSummary& s) const {
    if (s.count == 0) return 0.0;
    // Invert N = ln(2/δ) / (2 ε²) at the accepted count.
    return std::sqrt(std::log(2.0 / delta_) / (2.0 * static_cast<double>(s.count)));
}

std::size_t ChernoffHoeffding::sample_count(double delta, double epsilon) {
    check_params(delta, epsilon);
    return static_cast<std::size_t>(
        std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

GaussCriterion::GaussCriterion(double delta, double epsilon) {
    check_params(delta, epsilon);
    z_ = normal_quantile(1.0 - delta / 2.0);
    n_ = static_cast<std::size_t>(std::ceil(z_ * z_ / (4.0 * epsilon * epsilon)));
}

double GaussCriterion::achieved_half_width(const BernoulliSummary& s) const {
    if (s.count == 0) return 0.0;
    // Worst-case variance 1/4, as in the a-priori count.
    return z_ / (2.0 * std::sqrt(static_cast<double>(s.count)));
}

ChowRobbins::ChowRobbins(double delta, double epsilon, std::size_t min_samples)
    : epsilon_(epsilon), min_samples_(min_samples) {
    check_params(delta, epsilon);
    z_ = normal_quantile(1.0 - delta / 2.0);
}

bool ChowRobbins::should_stop(const BernoulliSummary& s) const {
    if (s.count < min_samples_) return false;
    // Chow-Robbins: stop when z * sqrt(var/n) <= eps, with the continuity
    // correction 1/n added to the variance estimate.
    const double var = s.variance() + 1.0 / static_cast<double>(s.count);
    const double half_width = z_ * std::sqrt(var / static_cast<double>(s.count));
    return half_width <= epsilon_;
}

double ChowRobbins::achieved_half_width(const BernoulliSummary& s) const {
    if (s.count == 0) return 0.0;
    const double var = s.variance() + 1.0 / static_cast<double>(s.count);
    return z_ * std::sqrt(var / static_cast<double>(s.count));
}

Sprt::Sprt(double threshold, double indifference, double delta) {
    if (!(threshold > 0.0 && threshold < 1.0)) throw Error("SPRT threshold must be in (0,1)");
    if (!(indifference > 0.0) || threshold - indifference <= 0.0 ||
        threshold + indifference >= 1.0) {
        throw Error("SPRT indifference region out of range");
    }
    check_params(delta, 0.5);
    p0_ = threshold + indifference;
    p1_ = threshold - indifference;
    log_a_ = std::log((1.0 - delta) / delta); // accept H1 above this
    log_b_ = std::log(delta / (1.0 - delta)); // accept H0 below this
}

double Sprt::log_ratio(const BernoulliSummary& s) const {
    const auto k = static_cast<double>(s.successes);
    const auto n = static_cast<double>(s.count);
    return k * std::log(p1_ / p0_) + (n - k) * std::log((1.0 - p1_) / (1.0 - p0_));
}

bool Sprt::should_stop(const BernoulliSummary& s) const { return verdict(s) != 0; }

int Sprt::verdict(const BernoulliSummary& s) const {
    if (s.count == 0) return 0;
    const double lr = log_ratio(s);
    if (lr >= log_a_) return -1; // evidence for H1: p <= p1
    if (lr <= log_b_) return +1; // evidence for H0: p >= p0
    return 0;
}

std::unique_ptr<StopCriterion> make_criterion(CriterionKind kind, double delta,
                                              double epsilon) {
    switch (kind) {
    case CriterionKind::ChernoffHoeffding:
        return std::make_unique<ChernoffHoeffding>(delta, epsilon);
    case CriterionKind::Gauss:
        return std::make_unique<GaussCriterion>(delta, epsilon);
    case CriterionKind::ChowRobbins:
        return std::make_unique<ChowRobbins>(delta, epsilon);
    }
    throw Error("unknown stop criterion");
}

std::string to_string(CriterionKind kind) {
    switch (kind) {
    case CriterionKind::ChernoffHoeffding: return "chernoff-hoeffding";
    case CriterionKind::Gauss: return "gauss";
    case CriterionKind::ChowRobbins: return "chow-robbins";
    }
    return "?";
}

} // namespace slimsim::stat
