#include "stat/collector.hpp"

#include <algorithm>
#include <chrono>

#include "stat/curve.hpp"
#include "support/diagnostics.hpp"

namespace slimsim::stat {

namespace {

/// Times one drain call into the latency histogram; reads the wall clock
/// only when metrics are attached.
class DrainTimer {
public:
    explicit DrainTimer(metrics::Histogram* h) : h_(h) {
        if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~DrainTimer() {
        if (h_ != nullptr) {
            h_->observe(0, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count());
        }
    }
    DrainTimer(const DrainTimer&) = delete;
    DrainTimer& operator=(const DrainTimer&) = delete;

private:
    metrics::Histogram* h_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace

SampleCollector::SampleCollector(std::size_t worker_count)
    : buffers_(worker_count), consumed_(worker_count, 0) {
    SLIMSIM_ASSERT(worker_count >= 1);
}

void SampleCollector::push(std::size_t worker, TaggedSample sample) {
    std::lock_guard lock(mutex_);
    SLIMSIM_ASSERT(worker < buffers_.size());
    buffers_[worker].push_back(sample);
    ++pushed_;
    max_buffered_ = std::max(max_buffered_, pushed_ - accepted_);
    if (m_depth_ != nullptr) m_depth_->set(static_cast<double>(pushed_ - accepted_));
}

void SampleCollector::consume_locked(BernoulliSummary& summary, std::size_t worker,
                                     std::vector<std::uint64_t>* tag_counts,
                                     CurveSummary* curve, std::uint64_t* steps) {
    auto& buffer = buffers_[worker];
    const TaggedSample s = buffer.front();
    buffer.pop_front();
    summary.add(s.value);
    if (curve != nullptr) curve->add(s.value, s.time);
    if (tag_counts != nullptr) {
        if (tag_counts->size() <= s.tag) tag_counts->resize(s.tag + 1, 0);
        ++(*tag_counts)[s.tag];
    }
    if (steps != nullptr) *steps += s.steps;
    ++consumed_[worker];
    ++accepted_;
}

std::size_t SampleCollector::drain_rounds(BernoulliSummary& summary, std::size_t max_rounds,
                                          std::vector<std::uint64_t>* tag_counts,
                                          std::uint64_t* steps) {
    std::lock_guard lock(mutex_);
    const DrainTimer timer(m_drain_);
    std::size_t rounds = buffers_.front().size();
    for (const auto& b : buffers_) rounds = std::min(rounds, b.size());
    rounds = std::min(rounds, max_rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
        for (std::size_t w = 0; w < buffers_.size(); ++w) {
            consume_locked(summary, w, tag_counts, nullptr, steps);
        }
        if (lane_ != nullptr) {
            lane_->instant(n_round_, n_arg_accepted_, static_cast<double>(accepted_));
        }
    }
    rounds_ += rounds;
    if (m_depth_ != nullptr) m_depth_->set(static_cast<double>(pushed_ - accepted_));
    return rounds * buffers_.size();
}

void SampleCollector::set_trace(tracer::Lane* lane) {
    lane_ = lane;
    if (lane_ != nullptr) {
        n_round_ = lane_->intern("collector.round");
        n_arg_accepted_ = lane_->intern("accepted");
    }
}

void SampleCollector::set_metrics(metrics::Registry* registry) {
    if (registry == nullptr) {
        m_depth_ = nullptr;
        m_drain_ = nullptr;
        return;
    }
    m_depth_ = &registry->gauge("slimsim_collector_queue_depth",
                                "Samples buffered across worker queues (live).");
    m_drain_ = &registry->histogram("slimsim_collector_drain_seconds",
                                    "Wall-clock seconds per collector drain call.",
                                    metrics::time_buckets());
}

std::size_t SampleCollector::drain_ordered(BernoulliSummary& summary, CurveSummary* curve,
                                           std::vector<std::uint64_t>* tag_counts,
                                           const std::function<bool()>& done,
                                           std::uint64_t* steps) {
    std::lock_guard lock(mutex_);
    const DrainTimer timer(m_drain_);
    std::size_t consumed = 0;
    while (!buffers_[cursor_].empty()) {
        consume_locked(summary, cursor_, tag_counts, curve, steps);
        ++consumed;
        cursor_ = (cursor_ + 1) % buffers_.size();
        if (cursor_ == 0) {
            ++rounds_;
            if (lane_ != nullptr) {
                lane_->instant(n_round_, n_arg_accepted_, static_cast<double>(accepted_));
            }
        }
        if (done()) break;
    }
    if (m_depth_ != nullptr) m_depth_->set(static_cast<double>(pushed_ - accepted_));
    return consumed;
}

std::size_t SampleCollector::drain_unordered(BernoulliSummary& summary,
                                             std::vector<std::uint64_t>* tag_counts,
                                             std::uint64_t* steps) {
    std::lock_guard lock(mutex_);
    const DrainTimer timer(m_drain_);
    std::size_t consumed = 0;
    for (std::size_t w = 0; w < buffers_.size(); ++w) {
        while (!buffers_[w].empty()) {
            consume_locked(summary, w, tag_counts, nullptr, steps);
            ++consumed;
        }
    }
    if (m_depth_ != nullptr) m_depth_->set(static_cast<double>(pushed_ - accepted_));
    return consumed;
}

std::size_t SampleCollector::buffered() const {
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b.size();
    return total;
}

telemetry::CollectorStats SampleCollector::stats() const {
    std::lock_guard lock(mutex_);
    telemetry::CollectorStats s;
    s.rounds = rounds_;
    s.accepted = accepted_;
    s.discarded = pushed_ - accepted_;
    s.max_buffered = max_buffered_;
    return s;
}

std::vector<std::uint64_t> SampleCollector::consumed_per_worker() const {
    std::lock_guard lock(mutex_);
    return consumed_;
}

} // namespace slimsim::stat
