#include "stat/collector.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace slimsim::stat {

SampleCollector::SampleCollector(std::size_t worker_count) : buffers_(worker_count) {
    SLIMSIM_ASSERT(worker_count >= 1);
}

void SampleCollector::push(std::size_t worker, bool sample) {
    std::lock_guard lock(mutex_);
    SLIMSIM_ASSERT(worker < buffers_.size());
    buffers_[worker].push_back(sample ? 1 : 0);
}

std::size_t SampleCollector::drain_rounds(BernoulliSummary& summary,
                                          std::size_t max_rounds) {
    std::lock_guard lock(mutex_);
    std::size_t rounds = buffers_.front().size();
    for (const auto& b : buffers_) rounds = std::min(rounds, b.size());
    rounds = std::min(rounds, max_rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
        for (auto& b : buffers_) {
            summary.add(b.front() != 0);
            b.pop_front();
        }
    }
    return rounds * buffers_.size();
}

std::size_t SampleCollector::drain_unordered(BernoulliSummary& summary) {
    std::lock_guard lock(mutex_);
    std::size_t consumed = 0;
    for (auto& b : buffers_) {
        while (!b.empty()) {
            summary.add(b.front() != 0);
            b.pop_front();
            ++consumed;
        }
    }
    return consumed;
}

std::size_t SampleCollector::buffered() const {
    std::lock_guard lock(mutex_);
    std::size_t total = 0;
    for (const auto& b : buffers_) total += b.size();
    return total;
}

} // namespace slimsim::stat
