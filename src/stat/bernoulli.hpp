// Bernoulli sample summaries for Monte Carlo estimation.
#pragma once

#include <cstddef>

namespace slimsim::stat {

/// Running summary of i.i.d. Bernoulli samples (one per simulated path;
/// success = the path satisfied the property).
struct BernoulliSummary {
    std::size_t count = 0;
    std::size_t successes = 0;

    void add(bool success) {
        ++count;
        if (success) ++successes;
    }

    [[nodiscard]] double mean() const {
        return count == 0 ? 0.0
                          : static_cast<double>(successes) / static_cast<double>(count);
    }

    /// Unbiased-ish sample variance of a Bernoulli(p̂): p̂(1-p̂)·n/(n-1).
    [[nodiscard]] double variance() const;
};

/// Running summary of i.i.d. real-valued samples (e.g. the weighted per-root
/// goal contributions of importance splitting, which are not 0/1). Sums are
/// accumulated in insertion order, so feeding samples in global path order
/// keeps the mean/variance byte-identical across worker counts.
struct RunningSummary {
    std::size_t count = 0;
    double sum = 0.0;
    double sum_squares = 0.0;

    void add(double x) {
        ++count;
        sum += x;
        sum_squares += x * x;
    }

    [[nodiscard]] double mean() const {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Sample variance (n-1 denominator); 0 for fewer than two samples.
    [[nodiscard]] double variance() const;

    /// CLT half-width of the (1-delta) confidence interval on the mean.
    [[nodiscard]] double half_width(double delta) const;
};

/// Inverse standard normal CDF (Acklam's rational approximation, |err| < 1e-9).
[[nodiscard]] double normal_quantile(double p);

} // namespace slimsim::stat
