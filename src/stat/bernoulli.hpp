// Bernoulli sample summaries for Monte Carlo estimation.
#pragma once

#include <cstddef>

namespace slimsim::stat {

/// Running summary of i.i.d. Bernoulli samples (one per simulated path;
/// success = the path satisfied the property).
struct BernoulliSummary {
    std::size_t count = 0;
    std::size_t successes = 0;

    void add(bool success) {
        ++count;
        if (success) ++successes;
    }

    [[nodiscard]] double mean() const {
        return count == 0 ? 0.0
                          : static_cast<double>(successes) / static_cast<double>(count);
    }

    /// Unbiased-ish sample variance of a Bernoulli(p̂): p̂(1-p̂)·n/(n-1).
    [[nodiscard]] double variance() const;
};

/// Inverse standard normal CDF (Acklam's rational approximation, |err| < 1e-9).
[[nodiscard]] double normal_quantile(double p);

} // namespace slimsim::stat
