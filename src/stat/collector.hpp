// Bias-free parallel sample collection (paper, Sec. III-C).
//
// Consuming samples in completion order biases the estimate when sample
// outcome correlates with simulation time (fast-failing paths arrive first)
// [21]. The fix from [22]: buffer samples per worker and consume *rounds* —
// one sample from every worker per round — so the accepted sample set does
// not depend on worker speed. This also makes parallel runs reproducible:
// the accepted multiset is exactly the first R samples of every worker's
// deterministic stream.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "stat/bernoulli.hpp"

namespace slimsim::stat {

class SampleCollector {
public:
    explicit SampleCollector(std::size_t worker_count);

    /// Called by worker threads; thread-safe.
    void push(std::size_t worker, bool sample);

    /// Consumes up to `max_rounds` complete rounds into `summary`.
    /// Returns the number of samples consumed. Thread-safe. Draining one
    /// round at a time and consulting the stop criterion in between keeps
    /// the accepted sample set deterministic in (seed, worker count).
    std::size_t drain_rounds(BernoulliSummary& summary,
                             std::size_t max_rounds = static_cast<std::size_t>(-1));

    /// Unbiased (first-come) consumption, for the bias-demonstration bench.
    std::size_t drain_unordered(BernoulliSummary& summary);

    /// Samples currently buffered across all workers.
    [[nodiscard]] std::size_t buffered() const;

    [[nodiscard]] std::size_t worker_count() const { return buffers_.size(); }

private:
    mutable std::mutex mutex_;
    std::vector<std::deque<char>> buffers_;
};

} // namespace slimsim::stat
