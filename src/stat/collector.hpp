// Bias-free parallel sample collection (paper, Sec. III-C).
//
// Consuming samples in completion order biases the estimate when sample
// outcome correlates with simulation time (fast-failing paths arrive first)
// [21]. The fix from [22]: buffer samples per worker and consume *rounds* —
// one sample from every worker per round — so the accepted sample set does
// not depend on worker speed. This also makes parallel runs reproducible:
// the accepted multiset is exactly the first R samples of every worker's
// deterministic stream.
//
// Samples optionally carry a small integer tag (the simulator uses the path
// terminal); tags counted over *accepted* samples are deterministic in
// (seed, worker count), unlike anything counted over generated paths. The
// collector also keeps round statistics for the telemetry run report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

#include "stat/bernoulli.hpp"
#include "support/metrics.hpp"
#include "support/telemetry.hpp"
#include "support/tracer/tracer.hpp"

namespace slimsim::stat {

class CurveSummary;

/// One buffered Bernoulli sample with an optional classification tag.
struct TaggedSample {
    bool value = false;
    std::uint8_t tag = 0;
    /// Terminal time of the path (the first goal-hit time for satisfied
    /// samples); consumed by multi-bound curve estimation.
    double time = 0.0;
    /// Discrete steps taken by the path; accumulated over *accepted*
    /// samples for the deterministic max_total_steps run budget.
    std::uint64_t steps = 0;
};

class SampleCollector {
public:
    explicit SampleCollector(std::size_t worker_count);

    /// Called by worker threads; thread-safe.
    void push(std::size_t worker, bool sample) { push(worker, TaggedSample{sample, 0}); }
    void push(std::size_t worker, TaggedSample sample);

    /// Consumes up to `max_rounds` complete rounds into `summary`.
    /// Returns the number of samples consumed. Thread-safe. Draining one
    /// round at a time and consulting the stop criterion in between keeps
    /// the accepted sample set deterministic in (seed, worker count).
    /// When `tag_counts` is given it is grown as needed and tag occurrences
    /// of the accepted samples are accumulated into it. When `steps` is
    /// given, accepted samples' step counts are accumulated into it (run
    /// budgets; read it between drain calls, never from inside done()).
    std::size_t drain_rounds(BernoulliSummary& summary,
                             std::size_t max_rounds = static_cast<std::size_t>(-1),
                             std::vector<std::uint64_t>* tag_counts = nullptr,
                             std::uint64_t* steps = nullptr);

    /// Unbiased (first-come) consumption, for the bias-demonstration bench.
    std::size_t drain_unordered(BernoulliSummary& summary,
                                std::vector<std::uint64_t>* tag_counts = nullptr,
                                std::uint64_t* steps = nullptr);

    /// Round-robin consumption at *sample* granularity, for curve and
    /// coverage estimation: consumes in global accepted order (sample r of
    /// worker 0, 1, ..., K-1, then sample r+1, ...), resuming mid-round
    /// across calls, and stops as soon as `done()` returns true after a
    /// sample or the next worker in order has nothing buffered. Each
    /// consumed sample updates `curve` — when non-null — with (value, time)
    /// alongside `summary`. Unlike whole-round draining, the accepted
    /// prefix can end mid-round, so the stop point is the same for every
    /// worker count — with per-path RNG streams this makes curve/coverage
    /// results independent of the worker count, not just deterministic at a
    /// fixed one. Thread-safe.
    /// `done()` runs under the collector mutex — it must not call back into
    /// the collector. `steps` (optional) accumulates accepted samples' step
    /// counts and is updated before `done()` runs, so governor checks inside
    /// `done()` may read the accumulator.
    std::size_t drain_ordered(BernoulliSummary& summary, CurveSummary* curve,
                              std::vector<std::uint64_t>* tag_counts,
                              const std::function<bool()>& done,
                              std::uint64_t* steps = nullptr);

    /// Samples currently buffered across all workers.
    [[nodiscard]] std::size_t buffered() const;

    [[nodiscard]] std::size_t worker_count() const { return buffers_.size(); }

    /// Round statistics so far: consumed rounds, accepted samples, samples
    /// still buffered (discarded if the run stops now) and the buffered
    /// high-water mark.
    [[nodiscard]] telemetry::CollectorStats stats() const;

    /// Samples consumed from each worker's buffer so far (== rounds for
    /// round-based draining).
    [[nodiscard]] std::vector<std::uint64_t> consumed_per_worker() const;

    /// Attaches an execution-trace lane: each consumed round emits a
    /// "collector.round" instant event (arg: accepted samples so far). The
    /// lane must be owned by the draining thread.
    void set_trace(tracer::Lane* lane);

    /// Attaches a live metrics registry (docs/observability.md): a queue-
    /// depth gauge (buffered samples, updated on push/drain) and a drain-
    /// latency histogram (seconds per drain call). Null detaches.
    void set_metrics(metrics::Registry* registry);

private:
    void consume_locked(BernoulliSummary& summary, std::size_t worker,
                        std::vector<std::uint64_t>* tag_counts,
                        CurveSummary* curve = nullptr, std::uint64_t* steps = nullptr);

    mutable std::mutex mutex_;
    std::vector<std::deque<TaggedSample>> buffers_;
    std::vector<std::uint64_t> consumed_;
    std::size_t cursor_ = 0; // next worker in ordered (sample-granular) draining
    std::uint64_t pushed_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rounds_ = 0;
    std::uint64_t max_buffered_ = 0;
    tracer::Lane* lane_ = nullptr;
    tracer::NameId n_round_ = tracer::kNoName;
    tracer::NameId n_arg_accepted_ = tracer::kNoName;
    metrics::Gauge* m_depth_ = nullptr;
    metrics::Histogram* m_drain_ = nullptr;
};

} // namespace slimsim::stat
