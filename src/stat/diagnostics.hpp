// Estimator health diagnostics (docs/observability.md): deterministic
// post-hoc checks over the deterministic fields of a finished run report —
// running-estimate drift against the stop-criterion trajectory, a
// batch-means effective-sample-size / CI-calibration check, per-level
// splitting health (crossing rates, degenerate / saturated levels), and
// curve band tightness — each emitted as a severity-tagged item with an
// actionable hint.
//
// Every check is a pure function of report fields that are themselves
// deterministic in (seed, workers), so the resulting "diagnostics" report
// section is byte-identical across worker counts whenever the run is.
#pragma once

#include "support/telemetry.hpp"

namespace slimsim::stat {

/// Tunable thresholds; the defaults are what the CLI uses.
struct DiagnosticsOptions {
    /// Drift check: warn when the estimate moved more than this many final
    /// half-widths over the second half of the trajectory.
    double drift_half_widths = 1.0;
    /// CI-calibration check: warn when the batch-means variance ratio
    /// exceeds this (1 = exactly binomial).
    double calibration_ratio = 2.0;
    /// Minimum trajectory segments before the calibration check speaks.
    std::size_t min_batches = 8;
    /// Splitting: a level whose conditional crossing rate is below this is
    /// degenerate (starved); above `saturated_rate` it is free (useless).
    double degenerate_rate = 0.01;
    double saturated_rate = 0.9;
};

/// Runs every applicable check over `report` and returns the diagnostics
/// section (enabled = true). Checks that lack their inputs (no trajectory,
/// no splitting section, no curve) are skipped, not failed.
[[nodiscard]] telemetry::DiagnosticsReport
diagnose_run(const telemetry::RunReport& report,
             const DiagnosticsOptions& options = {});

} // namespace slimsim::stat
