#include "stat/diagnostics.hpp"

#include <algorithm>
#include <cmath>

#include "stat/bernoulli.hpp"
#include "support/json.hpp"

namespace slimsim::stat {

namespace {

using telemetry::DiagnosticItem;
using telemetry::DiagnosticsReport;
using telemetry::RunReport;

double find_param(const RunReport& report, const std::string& name,
                  double fallback) {
    for (const auto& [key, value] : report.params) {
        if (key == name) return value;
    }
    return fallback;
}

void push(DiagnosticsReport& out, std::string check, std::string severity,
          double value, std::string hint) {
    if (severity != "ok") ++out.warnings;
    out.items.push_back(
        {std::move(check), std::move(severity), value, std::move(hint)});
}

std::string percent(double rate) {
    return json::format_double(rate * 100.0) + "%";
}

/// Running-estimate drift: how far (in final half-widths) the estimate
/// moved over the second half of the stop-criterion trajectory. A large
/// drift means the run stopped while the estimate was still travelling —
/// the classic symptom of an optimistic CI.
void check_drift(const RunReport& report, const DiagnosticsOptions& options,
                 DiagnosticsReport& out) {
    if (report.samples == 0 || report.stop_trajectory.size() < 2) return;
    const double final_estimate =
        static_cast<double>(report.successes) / static_cast<double>(report.samples);
    double half_width = report.run_status.achieved_half_width;
    if (half_width <= 0.0) {
        const double delta = find_param(report, "delta", 0.05);
        const double p = std::clamp(final_estimate, 0.0, 1.0);
        half_width = normal_quantile(1.0 - delta / 2.0) *
                     std::sqrt(p * (1.0 - p) /
                               static_cast<double>(report.samples));
    }
    if (half_width <= 0.0) return;
    double drift = 0.0;
    for (const auto& point : report.stop_trajectory) {
        if (point.samples == 0 || point.samples * 2 < report.samples) continue;
        const double estimate = static_cast<double>(point.successes) /
                                static_cast<double>(point.samples);
        drift = std::max(drift, std::abs(estimate - final_estimate) / half_width);
    }
    std::string hint;
    std::string severity = "ok";
    if (drift > options.drift_half_widths) {
        severity = "warning";
        hint = "estimate moved " + json::format_double(drift) +
               " final half-widths over the second half of the run — it may "
               "still be drifting; tighten --eps or raise the sample budget";
    }
    push(out, "estimate-drift", std::move(severity), drift, std::move(hint));
}

/// Batch-means CI calibration: the stop-criterion trajectory splits the
/// accepted sequence into segments; under iid Bernoulli sampling the
/// between-segment variance of the segment proportions matches the
/// binomial expectation (ratio 1). A ratio far above 1 means the CI is
/// narrower than the data supports; the effective sample size shrinks by
/// that factor.
void check_calibration(const RunReport& report, const DiagnosticsOptions& options,
                       DiagnosticsReport& out) {
    if (report.samples == 0 || report.successes == 0 ||
        report.successes == report.samples) {
        return; // degenerate pooled proportion: the statistic is undefined
    }
    struct Segment {
        double n;
        double p;
    };
    std::vector<Segment> segments;
    std::uint64_t prev_samples = 0;
    std::uint64_t prev_successes = 0;
    for (const auto& point : report.stop_trajectory) {
        if (point.samples <= prev_samples) continue;
        const double n = static_cast<double>(point.samples - prev_samples);
        const double s = static_cast<double>(point.successes - prev_successes);
        segments.push_back({n, s / n});
        prev_samples = point.samples;
        prev_successes = point.successes;
    }
    if (report.samples > prev_samples) {
        const double n = static_cast<double>(report.samples - prev_samples);
        const double s = static_cast<double>(report.successes - prev_successes);
        segments.push_back({n, s / n});
    }
    if (segments.size() < options.min_batches) return;
    const double pooled = static_cast<double>(report.successes) /
                          static_cast<double>(report.samples);
    double chi2 = 0.0;
    for (const auto& segment : segments) {
        const double d = segment.p - pooled;
        chi2 += segment.n * d * d / (pooled * (1.0 - pooled));
    }
    const double ratio = chi2 / static_cast<double>(segments.size() - 1);
    const double ess =
        static_cast<double>(report.samples) / std::max(ratio, 1.0);
    std::string severity = "ok";
    std::string hint;
    if (ratio > options.calibration_ratio) {
        severity = "warning";
        hint = "batch-means variance is " + json::format_double(ratio) +
               "x the binomial expectation — the CI may be optimistic "
               "(effective sample size ~" +
               std::to_string(static_cast<std::uint64_t>(ess)) + " of " +
               std::to_string(report.samples) + ")";
    }
    push(out, "ci-calibration", std::move(severity), ratio, std::move(hint));
    push(out, "effective-sample-size", "ok", ess, "");
}

/// Per-level splitting health: the conditional crossing rate of level L is
/// crossings(L) over the lineages that existed at L-1 (crossings + clones
/// there; the roots for the first level). A starved level multiplies
/// variance, a saturated one only multiplies paths.
void check_splitting(const RunReport& report, const DiagnosticsOptions& options,
                     DiagnosticsReport& out) {
    const auto& sp = report.splitting;
    if (!sp.enabled) return;
    if (sp.goal_hits == 0) {
        push(out, "splitting-goal-hits", "critical", 0.0,
             "no goal hits — the estimate is 0; add levels closer to the goal "
             "(--split-auto) or raise --split-roots");
    } else {
        push(out, "splitting-goal-hits", "ok",
             static_cast<double>(sp.goal_hits), "");
    }
    std::uint64_t lineages_below = sp.roots;
    for (const auto& row : sp.levels) {
        if (lineages_below == 0) break;
        const double rate = static_cast<double>(row.crossings) /
                            static_cast<double>(lineages_below);
        std::string severity = "ok";
        std::string hint;
        if (rate < options.degenerate_rate) {
            severity = "warning";
            hint = "level " + std::to_string(row.level) + " crossing rate " +
                   percent(rate) +
                   " — the level is starved; consider a larger --split-factor "
                   "or --split-auto placement";
        } else if (rate > options.saturated_rate) {
            severity = "warning";
            hint = "level " + std::to_string(row.level) + " crossing rate " +
                   percent(rate) +
                   " — the level is nearly free and only multiplies paths; "
                   "drop it (--split-auto skips always-reached levels)";
        }
        push(out, "splitting-level", std::move(severity), rate, std::move(hint));
        lineages_below = row.crossings + row.clones;
    }
}

/// Curve band tightness: the achieved simultaneous half-width against the
/// requested eps, plus bounds the sample set never resolved (zero hits).
void check_curve(const RunReport& report, DiagnosticsReport& out) {
    const auto& curve = report.curve;
    if (curve.points.empty()) return;
    const double eps = find_param(report, "eps", 0.0);
    std::string severity = "ok";
    std::string hint;
    if (eps > 0.0 && curve.simultaneous_eps > eps * (1.0 + 1e-9)) {
        severity = "warning";
        hint = "curve band +-" + json::format_double(curve.simultaneous_eps) +
               " is wider than the requested eps " + json::format_double(eps) +
               " — the run stopped before the band tightened; raise the "
               "budget or loosen --eps";
    }
    push(out, "curve-band", std::move(severity), curve.simultaneous_eps,
         std::move(hint));
    std::uint64_t empty_bounds = 0;
    for (const auto& point : curve.points) {
        if (point.successes == 0) ++empty_bounds;
    }
    if (empty_bounds > 0) {
        push(out, "curve-empty-bounds", "warning",
             static_cast<double>(empty_bounds),
             std::to_string(empty_bounds) +
                 " curve bound(s) have zero hits — the smallest bounds are "
                 "unresolved at this sample count");
    } else {
        push(out, "curve-empty-bounds", "ok", 0.0, "");
    }
}

} // namespace

telemetry::DiagnosticsReport diagnose_run(const telemetry::RunReport& report,
                                          const DiagnosticsOptions& options) {
    DiagnosticsReport out;
    out.enabled = true;
    check_drift(report, options, out);
    check_calibration(report, options, out);
    check_splitting(report, options, out);
    check_curve(report, out);
    return out;
}

} // namespace slimsim::stat
