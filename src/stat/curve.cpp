#include "stat/curve.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace slimsim::stat {

std::string to_string(BandKind band) {
    switch (band) {
    case BandKind::DKW: return "dkw";
    case BandKind::Bonferroni: return "bonferroni-chernoff";
    }
    return "?";
}

double per_bound_delta(BandKind band, double delta, std::size_t k) {
    SLIMSIM_ASSERT(k >= 1);
    return band == BandKind::DKW ? delta : delta / static_cast<double>(k);
}

double simultaneous_half_width(BandKind band, double delta, std::size_t k,
                               std::size_t n) {
    if (n == 0) return 1.0;
    const double d = per_bound_delta(band, delta, k);
    return std::sqrt(std::log(2.0 / d) / (2.0 * static_cast<double>(n)));
}

CurveSummary::CurveSummary(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty()) throw Error("curve bound grid must not be empty");
    double prev = 0.0;
    for (const double b : bounds_) {
        if (!(b > prev)) {
            throw Error("curve bounds must be positive and strictly ascending");
        }
        prev = b;
    }
    tree_.assign(bounds_.size() + 1, 0);
}

void CurveSummary::add(bool satisfied, double hit_time) {
    ++count_;
    if (!satisfied) return;
    // The first bound the hit decides positively: the smallest u_i >= t.
    // Hits land within bounds().back() by construction (paths are simulated
    // to u_K); clamp to the last bucket against floating-point dust.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), hit_time);
    const std::size_t bucket =
        it == bounds_.end() ? bounds_.size() - 1
                            : static_cast<std::size_t>(it - bounds_.begin());
    for (std::size_t i = bucket + 1; i < tree_.size(); i += i & (0 - i)) tree_[i] += 1;
}

void CurveSummary::restore(std::size_t count, std::vector<std::uint64_t> tree) {
    if (tree.size() != bounds_.size() + 1) {
        throw Error("curve checkpoint state does not match the bound grid");
    }
    count_ = count;
    tree_ = std::move(tree);
}

std::uint64_t CurveSummary::successes(std::size_t i) const {
    SLIMSIM_ASSERT(i < bounds_.size());
    std::uint64_t sum = 0;
    for (std::size_t j = i + 1; j > 0; j -= j & (0 - j)) sum += tree_[j];
    return sum;
}

BernoulliSummary CurveSummary::summary(std::size_t i) const {
    BernoulliSummary s;
    s.count = count_;
    s.successes = successes(i);
    return s;
}

double CurveSummary::estimate(std::size_t i) const {
    return count_ == 0
               ? 0.0
               : static_cast<double>(successes(i)) / static_cast<double>(count_);
}

} // namespace slimsim::stat
