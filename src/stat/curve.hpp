// Shared-path multi-bound curve estimation (the paper's Fig. 5 artifact).
//
// A path simulated to the largest bound u_K yields its first goal-hit time
// t, and monotonicity of timed reachability (hit within u  <=>  t <= u)
// decides *every* bound of a grid u_1 < ... < u_K at once. CurveSummary
// keeps one Bernoulli summary per bound, updated in O(log K) per path: a
// binary search maps the hit time to the first bound it satisfies and a
// Fenwick tree accumulates the per-bound success counts (all bounds share
// the sample count, so a K-point curve costs one run instead of K).
//
// Simultaneous confidence over the whole grid is caller-selectable:
//   - DKW: the Dvoretzky-Kiefer-Wolfowitz inequality bounds the sup-norm
//     error of the empirical CDF, P( sup_u |F_n(u) - F(u)| > eps ) <=
//     2 exp(-2 n eps^2) — the same sample count as a *single* bound's
//     Chernoff-Hoeffding interval, so the whole curve costs no extra
//     samples;
//   - Bonferroni: a union bound over K per-bound Chernoff-Hoeffding
//     intervals, each run at confidence parameter delta / K.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stat/bernoulli.hpp"

namespace slimsim::stat {

/// Simultaneous-confidence construction over a bound grid.
enum class BandKind : std::uint8_t { DKW, Bonferroni };

[[nodiscard]] std::string to_string(BandKind band);

/// The per-bound confidence parameter that gives *simultaneous* 1-delta
/// coverage over k bounds: delta itself for DKW (the inequality is uniform
/// by construction) and delta / k for the Bonferroni union bound. Feed the
/// result to the per-bound stop criterion.
[[nodiscard]] double per_bound_delta(BandKind band, double delta, std::size_t k);

/// Half-width of the simultaneous band over k bounds after n samples:
/// sqrt( ln(2/d) / (2n) ) with d = per_bound_delta(band, delta, k).
[[nodiscard]] double simultaneous_half_width(BandKind band, double delta, std::size_t k,
                                             std::size_t n);

/// Per-bound Bernoulli summaries over a shared path set. Bounds are fixed
/// at construction; every add() updates all of them at once (the sample
/// count is shared, successes live in a Fenwick tree over first-hit
/// buckets).
class CurveSummary {
public:
    CurveSummary() = default;

    /// `bounds` must be strictly ascending and positive.
    explicit CurveSummary(std::vector<double> bounds);

    /// Records one path: satisfied with first goal-hit time `hit_time`
    /// (<= bounds().back() up to rounding; ignored for unsatisfied paths).
    /// O(log K).
    void add(bool satisfied, double hit_time);

    [[nodiscard]] std::size_t size() const { return bounds_.size(); }
    [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

    /// Paths recorded so far (shared by every bound).
    [[nodiscard]] std::size_t count() const { return count_; }

    /// Successes at bound i: paths whose hit time is <= bounds()[i].
    /// O(log K).
    [[nodiscard]] std::uint64_t successes(std::size_t i) const;

    /// The Bernoulli summary of bound i (count = count(), successes as
    /// above); what per-bound stop criteria consume.
    [[nodiscard]] BernoulliSummary summary(std::size_t i) const;

    [[nodiscard]] double estimate(std::size_t i) const;

    /// Raw Fenwick state (size size()+1) for checkpointing.
    [[nodiscard]] const std::vector<std::uint64_t>& tree() const { return tree_; }

    /// Restores the summary from a checkpoint taken by tree()/count();
    /// `tree` must have size size()+1.
    void restore(std::size_t count, std::vector<std::uint64_t> tree);

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> tree_; // 1-based Fenwick tree over hit buckets
    std::size_t count_ = 0;
};

} // namespace slimsim::stat
