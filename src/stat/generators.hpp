// Stopping criteria ("generators" in the paper's terminology, Sec. III-A).
//
// The generator decides how many Monte Carlo samples are needed for the
// requested confidence 1-δ and error bound ε. The paper's tool implements
// the Chernoff-Hoeffding bound; Chow-Robbins and Gauss-style criteria are
// listed as future extensions and implemented here as well, plus the SPRT
// hypothesis test for qualitative questions (related-work capability).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "stat/bernoulli.hpp"

namespace slimsim::stat {

class CurveSummary;

class StopCriterion {
public:
    virtual ~StopCriterion() = default;

    /// Sample count known a priori, if this criterion has one (CH, Gauss).
    /// Sequential criteria (Chow-Robbins, SPRT) return nullopt.
    [[nodiscard]] virtual std::optional<std::size_t> fixed_sample_count() const {
        return std::nullopt;
    }

    /// Samples this criterion requires before it may stop at all (the
    /// adaptive Chow-Robbins floor); 0 when there is no such floor. Progress
    /// ETAs must never extrapolate a target below this.
    [[nodiscard]] virtual std::size_t min_sample_count() const { return 0; }

    /// True once enough samples have been collected.
    [[nodiscard]] virtual bool should_stop(const BernoulliSummary& s) const = 0;

    /// True once the criterion is met *simultaneously* at every bound of a
    /// multi-bound curve — the worst bound governs (all bounds share the
    /// sample count). For simultaneous 1-delta coverage, construct the
    /// criterion with stat::per_bound_delta(band, delta, K).
    [[nodiscard]] virtual bool should_stop_curve(const CurveSummary& curve) const;

    /// Half-width actually guaranteed at the accepted sample count — what a
    /// partial (budget-exhausted / interrupted / degraded) run achieved.
    /// 0 when nothing can be said yet (no samples, or SPRT).
    [[nodiscard]] virtual double achieved_half_width(const BernoulliSummary& s) const;

    [[nodiscard]] virtual std::string name() const = 0;
};

/// Chernoff-Hoeffding bound: N = ceil( ln(2/δ) / (2 ε²) ) samples give
/// P(|Â/N - p| <= ε) >= 1-δ.
class ChernoffHoeffding final : public StopCriterion {
public:
    ChernoffHoeffding(double delta, double epsilon);

    [[nodiscard]] std::optional<std::size_t> fixed_sample_count() const override {
        return n_;
    }
    [[nodiscard]] bool should_stop(const BernoulliSummary& s) const override {
        return s.count >= n_;
    }
    [[nodiscard]] double achieved_half_width(const BernoulliSummary& s) const override;
    [[nodiscard]] std::string name() const override { return "chernoff-hoeffding"; }

    [[nodiscard]] static std::size_t sample_count(double delta, double epsilon);

private:
    std::size_t n_;
    double delta_;
};

/// Gauss / central-limit criterion with worst-case variance 1/4:
/// N = ceil( z²_{1-δ/2} / (4 ε²) ). Fixed a priori, smaller than CH.
class GaussCriterion final : public StopCriterion {
public:
    GaussCriterion(double delta, double epsilon);

    [[nodiscard]] std::optional<std::size_t> fixed_sample_count() const override {
        return n_;
    }
    [[nodiscard]] bool should_stop(const BernoulliSummary& s) const override {
        return s.count >= n_;
    }
    [[nodiscard]] double achieved_half_width(const BernoulliSummary& s) const override;
    [[nodiscard]] std::string name() const override { return "gauss"; }

private:
    std::size_t n_;
    double z_;
};

/// Chow-Robbins sequential criterion: stop when the CLT confidence interval
/// at level 1-δ has half-width <= ε (with estimated variance). Adaptive:
/// needs far fewer samples when p is near 0 or 1.
class ChowRobbins final : public StopCriterion {
public:
    ChowRobbins(double delta, double epsilon, std::size_t min_samples = 64);

    [[nodiscard]] std::size_t min_sample_count() const override { return min_samples_; }
    [[nodiscard]] bool should_stop(const BernoulliSummary& s) const override;
    [[nodiscard]] double achieved_half_width(const BernoulliSummary& s) const override;
    [[nodiscard]] std::string name() const override { return "chow-robbins"; }

private:
    double z_;
    double epsilon_;
    std::size_t min_samples_;
};

/// Wald's sequential probability ratio test for H0: p >= p0 + w vs
/// H1: p <= p0 - w (indifference width w), with error bounds alpha = beta = δ.
class Sprt final : public StopCriterion {
public:
    Sprt(double threshold, double indifference, double delta);

    [[nodiscard]] bool should_stop(const BernoulliSummary& s) const override;
    /// +1: accept H0 (p >= threshold), -1: accept H1, 0: undecided.
    [[nodiscard]] int verdict(const BernoulliSummary& s) const;
    [[nodiscard]] std::string name() const override { return "sprt"; }

private:
    [[nodiscard]] double log_ratio(const BernoulliSummary& s) const;

    double p0_, p1_; // H0 at p0 (upper), H1 at p1 (lower)
    double log_a_, log_b_;
};

/// Named construction used by the CLI / benches.
enum class CriterionKind { ChernoffHoeffding, Gauss, ChowRobbins };
[[nodiscard]] std::unique_ptr<StopCriterion> make_criterion(CriterionKind kind, double delta,
                                                            double epsilon);
[[nodiscard]] std::string to_string(CriterionKind kind);

} // namespace slimsim::stat
