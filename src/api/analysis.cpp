#include "api/analysis.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>

#include "stat/diagnostics.hpp"
#include "support/diagnostics.hpp"
#include "support/http_server.hpp"
#include "support/json.hpp"
#include "support/memprobe.hpp"

namespace slimsim {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string hex16(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

/// Latest progress snapshot shared between the runners' consuming thread
/// (writer, via the chained progress callback) and the HTTP server thread
/// (reader, /status).
class StatusBoard {
public:
    void update(const sim::ProgressSnapshot& snap) {
        std::lock_guard lock(mutex_);
        snap_ = snap;
        have_ = true;
    }
    [[nodiscard]] std::optional<sim::ProgressSnapshot> latest() const {
        std::lock_guard lock(mutex_);
        if (!have_) return std::nullopt;
        return snap_;
    }

private:
    mutable std::mutex mutex_;
    sim::ProgressSnapshot snap_;
    bool have_ = false;
};

/// Immutable run identity captured *before* the server starts, so /status
/// never reads report fields the runners mutate concurrently.
struct StatusIdentity {
    std::string mode;
    std::string model;
    std::string property;
    std::string strategy;
    std::string criterion;
    std::string content_hash; // empty when no compiled model
    std::uint64_t seed = 0;
    std::size_t workers = 1;
    std::size_t processes = 0; // supervised runs: worker subprocess count
    double delta = 0.0;
    double eps = 0.0;
};

/// /status document: run identity + config digest + the latest snapshot.
std::string status_json(const StatusIdentity& id, const StatusBoard& board) {
    json::Value doc = json::Value::object();
    doc["status"] = "running";
    doc["mode"] = id.mode;
    doc["model"] = id.model;
    doc["property"] = id.property;
    json::Value digest = json::Value::object();
    digest["seed"] = id.seed;
    digest["workers"] = static_cast<std::uint64_t>(id.workers);
    if (id.processes > 0)
        digest["processes"] = static_cast<std::uint64_t>(id.processes);
    digest["strategy"] = id.strategy;
    digest["criterion"] = id.criterion;
    digest["delta"] = id.delta;
    digest["eps"] = id.eps;
    if (!id.content_hash.empty()) digest["content_hash"] = id.content_hash;
    doc["config"] = std::move(digest);
    if (const auto snap = board.latest()) {
        json::Value progress = json::Value::object();
        progress["samples"] = snap->samples;
        progress["successes"] = snap->successes;
        progress["estimate"] = snap->estimate;
        progress["half_width"] = snap->half_width;
        progress["required"] = snap->required;
        progress["elapsed_seconds"] = snap->elapsed_seconds;
        progress["eta_seconds"] = snap->eta_seconds;
        doc["progress"] = std::move(progress);
    } else {
        doc["progress"] = nullptr;
    }
    return doc.dump() + "\n";
}

/// Parses "tail=N" out of a query string ("a=b&tail=5"). Absent leaves
/// `tail` untouched and returns true; a malformed value returns false.
bool parse_tail(const std::string& query, std::size_t& tail) {
    std::size_t pos = 0;
    while (pos <= query.size() && !query.empty()) {
        std::size_t amp = query.find('&', pos);
        if (amp == std::string::npos) amp = query.size();
        const std::string_view pair(query.data() + pos, amp - pos);
        if (pair.substr(0, 5) == "tail=") {
            const std::string_view v = pair.substr(5);
            if (v.empty() || v.size() > 18) return false;
            std::size_t n = 0;
            for (const char c : v) {
                if (c < '0' || c > '9') return false;
                n = n * 10 + static_cast<std::size_t>(c - '0');
            }
            tail = n;
        }
        pos = amp + 1;
    }
    return true;
}

} // namespace

eda::CompiledModelPtr compile(std::shared_ptr<const slim::InstanceModel> model) {
    return eda::compile_model(std::move(model));
}

eda::CompiledModelPtr compile_source(std::string_view source, std::string filename,
                                     eda::LoadPhases* phases) {
    return eda::compile_model(
        eda::load_instance_model(source, std::move(filename), phases));
}

eda::CompiledModelPtr compile_file(const std::string& path, eda::LoadPhases* phases) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open model file `" + path + "`");
    std::ostringstream buf;
    buf << in.rdbuf();
    return compile_source(buf.str(), path, phases);
}

std::string to_string(AnalysisMode mode) {
    switch (mode) {
    case AnalysisMode::Estimate: return "estimate";
    case AnalysisMode::EstimateParallel: return "estimate-parallel";
    case AnalysisMode::HypothesisTest: return "hypothesis-test";
    case AnalysisMode::CtmcFlow: return "ctmc-flow";
    case AnalysisMode::EstimateSplitting: return "estimate-splitting";
    }
    return "?";
}

std::string AnalysisResult::to_string() const {
    std::ostringstream os;
    switch (mode) {
    case AnalysisMode::Estimate:
    case AnalysisMode::EstimateParallel: {
        if (!curve.points.empty()) {
            os << "P( " << report.property << " ) ~= " << value
               << " at the largest bound\n"
               << curve.to_string() << "\n"
               << "terminals:";
            for (const auto& [name, n] : sim::terminal_histogram(curve.terminals)) {
                os << " " << name << "=" << n;
            }
            break;
        }
        os << "P( " << report.property << " ) ~= " << value << "\n"
           << estimation.to_string() << "\n"
           << "terminals:";
        for (const auto& [name, n] : sim::terminal_histogram(estimation.terminals)) {
            os << " " << name << "=" << n;
        }
        break;
    }
    case AnalysisMode::HypothesisTest:
        os << "P( " << report.property << " ) >= " << hypothesis.threshold << " ?\n"
           << hypothesis.to_string();
        break;
    case AnalysisMode::CtmcFlow: os << "ctmc flow: " << flow.to_string(); break;
    case AnalysisMode::EstimateSplitting:
        os << "P( " << report.property << " ) ~= " << value
           << "  (importance splitting)\n"
           << splitting.to_string() << "\n"
           << "terminals:";
        for (const auto& [name, n] : sim::terminal_histogram(splitting.terminals)) {
            os << " " << name << "=" << n;
        }
        break;
    }
    return os.str();
}

AnalysisResult run_analysis(const eda::Network& net, const AnalysisRequest& request) {
    const auto start = std::chrono::steady_clock::now();
    AnalysisResult result;
    result.mode = request.mode;

    telemetry::RunReport& report = result.report;
    report.mode = to_string(request.mode);
    report.model = request.model_label;
    report.property = request.property.text;
    report.seed = request.seed;
    const bool supervised =
        request.supervision.processes > 0 &&
        (request.mode == AnalysisMode::Estimate ||
         request.mode == AnalysisMode::EstimateParallel);
    report.workers = supervised ? request.supervision.processes
                     : request.mode == AnalysisMode::EstimateParallel ||
                             request.mode == AnalysisMode::EstimateSplitting
                         ? std::max<std::size_t>(1, request.workers)
                         : 1;
    report.phases = request.frontend_phases;
    report.params.emplace_back("bound", request.property.bound);

    if (const eda::CompiledModelPtr& cm = net.compiled(); cm != nullptr) {
        const eda::CompileStats& cs = cm->stats();
        report.compiled_model.present = true;
        report.compiled_model.programs = cs.programs;
        report.compiled_model.unique_programs = cs.unique_programs;
        report.compiled_model.nodes = cs.nodes;
        report.compiled_model.bytecode_bytes = cs.bytecode_bytes;
        report.compiled_model.content_hash = hex16(cm->content_hash());
    }

    telemetry::Recorder local_recorder;
    telemetry::Recorder* recorder =
        request.recorder != nullptr ? request.recorder
        : request.telemetry         ? &local_recorder
                                    : nullptr;
    telemetry::RunReport* rp = request.telemetry ? &report : nullptr;

    if (request.coverage && request.mode != AnalysisMode::Estimate &&
        request.mode != AnalysisMode::EstimateParallel) {
        throw Error("coverage profiling is only available in the estimation modes");
    }
    if (request.supervision.processes > 0) {
        if (request.mode != AnalysisMode::Estimate &&
            request.mode != AnalysisMode::EstimateParallel) {
            throw Error("process-isolated supervision (--processes) is only "
                        "available in the estimation modes");
        }
        if (request.coverage) {
            throw Error("--processes cannot be combined with coverage profiling");
        }
        if (request.witness.per_kind > 0) {
            throw Error("--processes cannot be combined with witness capture");
        }
        if (request.tracer != nullptr && request.tracer->enabled()) {
            throw Error("--processes cannot be combined with execution tracing");
        }
    }
    const sim::RunControlOptions& control = request.sim.control;
    if (control.hardened() && request.mode != AnalysisMode::Estimate &&
        request.mode != AnalysisMode::EstimateParallel &&
        request.mode != AnalysisMode::EstimateSplitting) {
        throw Error("run budgets, --fault, --checkpoint and --resume are only "
                    "available in the estimation modes");
    }
    if (control.resume != nullptr) {
        // A resumed run replays only the tail of the path set, so artifacts
        // built over *all* accepted paths cannot be completed.
        if (request.coverage) {
            throw Error("--resume cannot be combined with coverage profiling");
        }
        if (request.witness.per_kind > 0) {
            throw Error("--resume cannot be combined with witness capture");
        }
    }

    sim::SimOptions sim_options = request.sim;
    if (recorder != nullptr) sim_options.recorder = recorder;
    sim_options.coverage = request.coverage;
    sim_options.witness = request.witness;
    sim_options.progress = request.progress;
    sim_options.progress.delta = request.delta;
    sim_options.progress.eps = request.eps;
    tracer::Tracer* tracer =
        request.tracer != nullptr && request.tracer->enabled() ? request.tracer : nullptr;

    // Live metrics + embedded HTTP exporter (docs/observability.md). A
    // private registry is created when serving without a caller-provided
    // one; instruments only count, so results stay byte-identical with
    // metrics on or off.
    std::optional<metrics::Registry> local_registry;
    metrics::Registry* registry = request.metrics;
    if (registry == nullptr && request.serve.enabled) {
        local_registry.emplace(std::max<std::size_t>(1, report.workers));
        registry = &*local_registry;
    }
    sim_options.metrics = registry;

    // Structured run journal (docs/observability.md): lifecycle bookends
    // here, runner/splitting events inside the engines. The run_start line
    // deliberately carries no worker count, so the journal's deterministic
    // fields are byte-identical across worker counts.
    journal::Journal* jnl = request.journal;
    sim_options.journal = jnl;
    if (jnl != nullptr) {
        jnl->emit(journal::Level::Info, "run_start", report.model,
                  {{"mode", report.mode},
                   {"property", report.property},
                   {"seed", report.seed}});
    }

    StatusBoard board;
    sim::SeriesStore series;
    metrics::Gauge* live_drift =
        registry != nullptr
            ? &registry->gauge("slimsim_diag_estimate_drift",
                               "Live estimate drift vs the previous progress "
                               "snapshot, in current CI half-widths")
            : nullptr;
    if (registry != nullptr || request.serve.enabled) {
        // Chain, don't replace: the board, the /series history and the live
        // drift gauge all ride the existing snapshot machinery
        // (consuming-thread only), so serving cannot perturb the
        // deterministic sample order.
        const sim::ProgressFn prev = sim_options.progress.callback;
        auto prev_estimate = std::make_shared<std::optional<double>>();
        sim_options.progress.callback = [&board, &series, live_drift, prev_estimate,
                                         prev](const sim::ProgressSnapshot& s) {
            if (live_drift != nullptr && prev_estimate->has_value() &&
                s.half_width > 0.0) {
                live_drift->set(std::abs(s.estimate - **prev_estimate) / s.half_width);
            }
            *prev_estimate = s.estimate;
            series.push(s);
            board.update(s);
            if (prev) prev(s);
        };
    }

    http::Server server;
    if (request.serve.enabled) {
        StatusIdentity id;
        id.mode = report.mode;
        id.model = report.model;
        id.property = report.property;
        id.strategy = sim::to_string(request.strategy);
        id.criterion = stat::to_string(request.criterion);
        id.content_hash = report.compiled_model.content_hash;
        id.seed = report.seed;
        id.workers = report.workers;
        id.processes = supervised ? request.supervision.processes : 0;
        id.delta = request.delta;
        id.eps = request.eps;
        const std::uint16_t port = server.start(
            request.serve.port,
            [registry, jnl, id = std::move(id), &board,
             &series](const http::Request& req) -> http::Response {
                if (req.path == "/metrics") {
                    return {200, "text/plain; version=0.0.4; charset=utf-8",
                            registry->expose()};
                }
                if (req.path == "/status") {
                    return {200, "application/json; charset=utf-8",
                            status_json(id, board)};
                }
                if (req.path == "/healthz") {
                    return {200, "text/plain; charset=utf-8", "ok\n"};
                }
                if (req.path == "/series") {
                    return {200, "application/json; charset=utf-8",
                            series.to_json() + "\n"};
                }
                if (req.path == "/journal") {
                    if (jnl == nullptr) {
                        return {404, "text/plain; charset=utf-8",
                                "journal not enabled (run with --log)\n"};
                    }
                    std::size_t tail = 64;
                    if (!parse_tail(req.query, tail)) {
                        return {400, "text/plain; charset=utf-8",
                                "bad tail parameter (expected tail=N)\n"};
                    }
                    return {200, "application/x-ndjson; charset=utf-8",
                            jnl->tail_jsonl(tail)};
                }
                return {404, "text/plain; charset=utf-8", "not found\n"};
            });
        if (request.serve.on_bound) request.serve.on_bound(port);
    }

    // Supervised execution reuses both estimation arms: the coordinator
    // replaces the in-process engine, everything around it (criterion,
    // curve grid, progress chain, journal, metrics, report) is shared.
    auto supervise_options = [&] {
        sim::supervise::SuperviseOptions so;
        so.processes = request.supervision.processes;
        so.worker_timeout_seconds = request.supervision.worker_timeout_seconds;
        so.worker_retries = request.supervision.worker_retries;
        so.injections = request.supervision.injections;
        so.worker_exe = request.supervision.worker_exe;
        so.model_path = request.supervision.model_path.empty()
                            ? request.model_label
                            : request.supervision.model_path;
        so.sim = sim_options;
        return so;
    };

    switch (request.mode) {
    case AnalysisMode::Estimate: {
        report.params.emplace_back("delta", request.delta);
        report.params.emplace_back("eps", request.eps);
        // Curve mode tightens the per-bound delta so the whole grid carries
        // simultaneous 1-delta confidence (no-op for the DKW band).
        const bool curve_mode = !request.curve_bounds.empty();
        const auto criterion = stat::make_criterion(
            request.criterion,
            curve_mode ? stat::per_bound_delta(request.curve_band, request.delta,
                                               request.curve_bounds.size())
                       : request.delta,
            request.eps);
        sim_options.progress.min_samples = criterion->min_sample_count();
        if (tracer != nullptr) sim_options.trace_lane = tracer->lane("main");
        const auto t0 = std::chrono::steady_clock::now();
        if (curve_mode) {
            sim::CurveOptions co;
            co.bounds = request.curve_bounds;
            co.band = request.curve_band;
            co.delta = request.delta;
            result.curve =
                supervised
                    ? sim::supervise::estimate_curve_supervised(
                          net, request.property, request.strategy, *criterion, co,
                          request.seed, supervise_options(), rp)
                    : sim::estimate_curve(net, request.property, request.strategy,
                                          *criterion, co, request.seed, sim_options,
                                          rp);
            result.value = result.curve.points.back().estimate;
        } else if (supervised) {
            result.estimation = sim::supervise::estimate_supervised(
                net, request.property, request.strategy, *criterion, request.seed,
                supervise_options(), rp);
            result.value = result.estimation.estimate;
        } else {
            result.estimation = sim::estimate(net, request.property, request.strategy,
                                              *criterion, request.seed, sim_options, rp);
            result.value = result.estimation.estimate;
        }
        report.phases.push_back({"simulate", seconds_since(t0)});
        break;
    }
    case AnalysisMode::EstimateParallel: {
        report.params.emplace_back("delta", request.delta);
        report.params.emplace_back("eps", request.eps);
        const bool curve_mode = !request.curve_bounds.empty();
        const auto criterion = stat::make_criterion(
            request.criterion,
            curve_mode ? stat::per_bound_delta(request.curve_band, request.delta,
                                               request.curve_bounds.size())
                       : request.delta,
            request.eps);
        sim_options.progress.min_samples = criterion->min_sample_count();
        sim::ParallelOptions po;
        po.workers = request.workers;
        po.collection = request.collection;
        po.sim = sim_options;
        po.tracer = tracer;
        const auto t0 = std::chrono::steady_clock::now();
        if (curve_mode) {
            sim::CurveOptions co;
            co.bounds = request.curve_bounds;
            co.band = request.curve_band;
            co.delta = request.delta;
            result.curve =
                supervised
                    ? sim::supervise::estimate_curve_supervised(
                          net, request.property, request.strategy, *criterion, co,
                          request.seed, supervise_options(), rp)
                    : sim::estimate_curve_parallel(net, request.property,
                                                   request.strategy, *criterion, co,
                                                   request.seed, po, rp);
            result.value = result.curve.points.back().estimate;
        } else if (supervised) {
            result.estimation = sim::supervise::estimate_supervised(
                net, request.property, request.strategy, *criterion, request.seed,
                supervise_options(), rp);
            result.value = result.estimation.estimate;
        } else {
            result.estimation = sim::estimate_parallel(
                net, request.property, request.strategy, *criterion, request.seed, po, rp);
            result.value = result.estimation.estimate;
        }
        report.phases.push_back({"simulate", seconds_since(t0)});
        break;
    }
    case AnalysisMode::HypothesisTest: {
        report.params.emplace_back("delta", request.delta);
        report.params.emplace_back("indifference", request.indifference);
        report.params.emplace_back("threshold", request.threshold);
        sim::HypothesisOptions ho;
        ho.indifference = request.indifference;
        ho.delta = request.delta;
        ho.max_samples = request.max_samples;
        if (tracer != nullptr) sim_options.trace_lane = tracer->lane("main");
        ho.sim = sim_options;
        const auto t0 = std::chrono::steady_clock::now();
        result.hypothesis =
            sim::test_hypothesis(net, request.property, request.strategy,
                                 request.threshold, request.seed, ho, rp);
        report.phases.push_back({"simulate", seconds_since(t0)});
        result.value = result.hypothesis.samples > 0
                           ? static_cast<double>(result.hypothesis.successes) /
                                 static_cast<double>(result.hypothesis.samples)
                           : 0.0;
        break;
    }
    case AnalysisMode::EstimateSplitting: {
        if (!request.curve_bounds.empty()) {
            throw Error("--split cannot be combined with curve estimation");
        }
        if (request.witness.per_kind > 0) {
            throw Error("--split cannot be combined with witness capture");
        }
        report.params.emplace_back("split_factor",
                                   static_cast<double>(request.splitting.factor));
        report.params.emplace_back("split_roots",
                                   static_cast<double>(request.splitting.base_runs));
        rare::LevelSpec spec;
        if (request.splitting.auto_levels) {
            spec.auto_levels = true;
            spec.text = "auto";
        } else {
            spec.expression =
                rare::make_level_function(net.model(), request.splitting.level);
            spec.text = request.splitting.level;
        }
        rare::SplittingOptions so;
        so.splitting_factor = request.splitting.factor;
        so.base_runs = request.splitting.base_runs;
        so.max_total_paths = request.splitting.max_total_paths;
        so.pilot_runs = request.splitting.pilot_runs;
        so.workers = report.workers;
        so.sim = sim_options;
        const auto t0 = std::chrono::steady_clock::now();
        // The splitting sections of the report are deterministic result
        // content, so they are filled even when full telemetry is off.
        result.splitting = rare::estimate_splitting(net, request.property,
                                                    request.strategy, spec, request.seed,
                                                    so, &report);
        report.phases.push_back({"simulate", seconds_since(t0)});
        result.value = result.splitting.estimate;
        result.coverage = result.splitting.pilot_coverage;
        break;
    }
    case AnalysisMode::CtmcFlow: {
        if (request.property.kind != sim::FormulaKind::Reach || request.property.lo != 0.0) {
            throw Error("the CTMC flow supports P( <> [0,u] goal ) only");
        }
        report.params.emplace_back("precision", request.flow.transient.precision);
        ctmc::FlowOptions flow_options = request.flow;
        if (tracer != nullptr) flow_options.trace_lane = tracer->lane("ctmc");
        result.flow = ctmc::run_ctmc_flow(net, *request.property.goal,
                                          request.property.bound, flow_options, rp);
        result.value = result.flow.probability;
        break;
    }
    }

    // The exporter stops with the run (the Server destructor also stops it
    // when the dispatch above throws).
    server.stop();

    // Mirror the engine results into the report even when full telemetry is
    // off, so the identity/result sections are always populated.
    report.value = result.value;
    if (request.coverage) {
        result.coverage = !result.curve.points.empty() ? result.curve.coverage
                                                       : result.estimation.coverage;
        report.coverage = result.coverage;
    }
    if (rp == nullptr) {
        switch (request.mode) {
        case AnalysisMode::Estimate:
        case AnalysisMode::EstimateParallel:
            if (!result.curve.points.empty()) {
                report.samples = result.curve.samples;
                report.successes = result.curve.points.back().successes;
                report.strategy = result.curve.strategy;
                report.criterion = result.curve.criterion;
                report.terminals = sim::terminal_histogram(result.curve.terminals);
                report.curve = {result.curve.band, result.curve.simultaneous_eps,
                                result.curve.points};
                sim::fill_run_status(&report, result.curve.status,
                                     result.curve.stop_cause,
                                     result.curve.achieved_half_width,
                                     result.curve.path_errors, result.curve.error_log);
                break;
            }
            report.samples = result.estimation.samples;
            report.successes = result.estimation.successes;
            report.strategy = result.estimation.strategy;
            report.criterion = result.estimation.criterion;
            report.terminals = sim::terminal_histogram(result.estimation.terminals);
            sim::fill_run_status(&report, result.estimation.status,
                                 result.estimation.stop_cause,
                                 result.estimation.achieved_half_width,
                                 result.estimation.path_errors,
                                 result.estimation.error_log);
            break;
        case AnalysisMode::HypothesisTest:
            report.samples = result.hypothesis.samples;
            report.successes = result.hypothesis.successes;
            report.strategy = sim::to_string(request.strategy);
            report.criterion = "sprt";
            report.verdict = sim::to_string(result.hypothesis.verdict);
            break;
        case AnalysisMode::CtmcFlow: break;
        // estimate_splitting always receives the report and fills its own
        // result/run_status/splitting sections.
        case AnalysisMode::EstimateSplitting: break;
        }
    }
    // Estimator health diagnostics (docs/observability.md): a pure function
    // of deterministic report fields, so the section is byte-identical
    // across worker counts and with the journal/metrics on or off.
    if (request.mode == AnalysisMode::Estimate ||
        request.mode == AnalysisMode::EstimateParallel ||
        request.mode == AnalysisMode::EstimateSplitting) {
        report.diagnostics = stat::diagnose_run(report);
        if (registry != nullptr) {
            registry
                ->gauge("slimsim_diag_warnings",
                        "Diagnostics items with warning or critical severity")
                .set(static_cast<double>(report.diagnostics.warnings));
            std::map<std::string, int> seen;
            for (const auto& item : report.diagnostics.items) {
                const int n = seen[item.check]++;
                std::string labels = metrics::label("check", item.check);
                // Repeated checks (one splitting-level item per level) get a
                // seq label so the gauge children stay distinct.
                if (n > 0) labels += "," + metrics::label("seq", std::to_string(n));
                registry
                    ->gauge("slimsim_diag_check",
                            "Diagnostic check value (see the run report's "
                            "diagnostics section)",
                            labels)
                    .set(item.value);
                registry
                    ->gauge("slimsim_diag_severity",
                            "Diagnostic severity (0 ok, 1 warning, 2 critical)",
                            labels)
                    .set(item.severity == "critical"  ? 2.0
                         : item.severity == "warning" ? 1.0
                                                      : 0.0);
            }
        }
    }

    if (recorder != nullptr && request.telemetry) report.absorb(*recorder);
    report.wall_seconds = seconds_since(start);
    report.peak_rss_bytes = peak_rss_bytes();
    if (jnl != nullptr) {
        jnl->emit(journal::Level::Info, "run_end", "analysis complete",
                  {{"status", report.run_status.status},
                   {"value", report.value},
                   {"samples", report.samples},
                   {"diag_warnings", report.diagnostics.warnings}});
    }
    return result;
}

AnalysisResult run_analysis(const eda::CompiledModelPtr& model,
                            const AnalysisRequest& request) {
    return run_analysis(eda::Network(model), request);
}

} // namespace slimsim
