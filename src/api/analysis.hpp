// The unified analysis surface: one request/result pair and one entry point
// for every analysis mode the engine offers — quantitative estimation
// (sequential or parallel), qualitative SPRT hypothesis testing, and the
// exhaustive CTMC flow. Mirrors the uniform query interface of UPPAAL-SMC:
// callers build an AnalysisRequest, call run_analysis(), and get an
// AnalysisResult carrying both the mode-specific result struct and a
// structured telemetry::RunReport (rendered as versioned JSON by the CLI's
// --json flag).
//
// The legacy entry points (sim::estimate, sim::estimate_parallel,
// sim::test_hypothesis, ctmc::run_ctmc_flow) remain available as the
// underlying engines; run_analysis is the surface new code and the CLI use.
#pragma once

#include <functional>

#include "ctmc/flow.hpp"
#include "rare/splitting.hpp"
#include "sim/hypothesis.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/supervise/supervise.hpp"
#include "support/metrics.hpp"

namespace slimsim {

/// Embedded HTTP exporter options (docs/observability.md): while the
/// analysis runs, a loopback server serves /metrics (Prometheus text from
/// the live metrics registry), /status (JSON: run identity, config digest,
/// latest progress snapshot) and /healthz. The server starts before the
/// engine dispatch and shuts down when run_analysis returns — on run end,
/// error, or the SIGINT path's normal unwind.
struct ServeOptions {
    bool enabled = false;
    /// Loopback TCP port; 0 binds an ephemeral port (the CLI prints it to
    /// stderr via on_bound).
    std::uint16_t port = 0;
    /// Invoked once with the bound port before sampling starts.
    std::function<void(std::uint16_t)> on_bound;
};

enum class AnalysisMode : std::uint8_t {
    Estimate,          // sequential Monte Carlo estimation
    EstimateParallel,  // round-based parallel Monte Carlo estimation
    HypothesisTest,    // Wald SPRT: is P >= threshold?
    CtmcFlow,          // exhaustive: state space -> CTMC -> uniformization
    EstimateSplitting, // rare events: fixed importance splitting
};

[[nodiscard]] std::string to_string(AnalysisMode mode);

/// One analysis query. Mode-specific fields are ignored by other modes.
struct AnalysisRequest {
    AnalysisMode mode = AnalysisMode::Estimate;

    /// The path property (sim::make_reachability and friends). The CTMC
    /// flow requires kind == Reach with lo == 0.
    sim::PathFormula property;

    /// Label recorded in the run report (the CLI passes the model path).
    std::string model_label = "<model>";

    // Simulation-based modes.
    sim::StrategyKind strategy = sim::StrategyKind::Progressive;
    stat::CriterionKind criterion = stat::CriterionKind::ChernoffHoeffding;
    double delta = 0.05; // 1 - confidence
    double eps = 0.01;   // error bound
    std::uint64_t seed = 1;
    std::size_t workers = 1; // EstimateParallel: worker thread count
    sim::CollectionMode collection = sim::CollectionMode::RoundRobin;
    /// Per-path simulation options. `sim.control` carries the run-hardening
    /// surface (docs/robustness.md): budgets, fault policy, interrupt flag
    /// and checkpoint/resume. Hardening is rejected for HypothesisTest and
    /// CtmcFlow; resume cannot be combined with coverage or witness capture.
    /// Budget-exhausted or interrupted runs return a *partial* result whose
    /// status/stop_cause/achieved_half_width say how far they got — they do
    /// not throw.
    sim::SimOptions sim;

    /// Multi-bound curve estimation (Estimate / EstimateParallel): when
    /// non-empty, the engine estimates P( <> [0,u] goal ) for every bound of
    /// this strictly ascending grid from ONE shared path set — each path
    /// runs to the largest bound and its first goal-hit time decides every
    /// bound at once. Bounds must lie in (0, property.bound]; requires a
    /// Reach property with lo == 0. Results land in AnalysisResult::curve
    /// and the report's "curve" section; the headline value is the largest
    /// bound's estimate. The stop criterion is built with
    /// stat::per_bound_delta(curve_band, delta, K) so the whole curve
    /// carries simultaneous 1-delta confidence. Per-path RNG streams make
    /// curve results byte-identical across worker counts. Witness capture is
    /// not supported in curve mode.
    std::vector<double> curve_bounds;
    stat::BandKind curve_band = stat::BandKind::DKW;

    // HypothesisTest.
    double threshold = 0.5;
    double indifference = 0.01;
    std::size_t max_samples = 10'000'000;

    // CtmcFlow.
    ctmc::FlowOptions flow;

    /// EstimateSplitting (docs/rare-events.md): the level function — either
    /// an expression over data elements (splitting.level, resolved via
    /// rare::make_level_function) or automatic placement (splitting.auto_
    /// levels: a pilot run derives levels from the error-state profile) —
    /// plus the splitting factor and root count. Root trees merge in global
    /// root order, so splitting results are byte-identical for every
    /// `workers` count at a fixed seed. Curve bounds, witness capture and
    /// checkpoint/resume are rejected in this mode; budgets, SIGINT draining
    /// and the fault policy apply through `sim.control` like every
    /// estimation mode.
    struct SplittingQuery {
        std::string level;       // level expression text ("" with auto_levels)
        bool auto_levels = false;
        std::size_t factor = 8;
        std::size_t base_runs = 4096;
        std::size_t max_total_paths = 10'000'000;
        std::size_t pilot_runs = 256;
    };
    SplittingQuery splitting;

    /// Collect the telemetry run report (counters, histograms, phase
    /// timings). Off: the report carries identity/result fields only and
    /// simulation pays no instrumentation cost.
    bool telemetry = true;

    /// Optional external recorder; when null and telemetry is on,
    /// run_analysis uses a private one. The recorder feeds the report's
    /// counters/timers/histograms sections.
    telemetry::Recorder* recorder = nullptr;

    /// Optional execution tracer (docs/tracing.md). Estimate/HypothesisTest
    /// record on a "main" lane, EstimateParallel on per-worker lanes plus a
    /// "collector" lane, CtmcFlow on a "ctmc" lane. The caller exports the
    /// trace afterwards (Tracer::to_chrome_json; the CLI's --trace flag).
    tracer::Tracer* tracer = nullptr;

    /// Witness capture (estimation modes): retain the first
    /// witness.per_kind accepting and non-accepting paths, replayed into
    /// AnalysisResult::estimation.witnesses. Deterministic in
    /// (seed, workers).
    sim::WitnessOptions witness;

    /// Live progress streaming (estimation modes): invoked from the
    /// consuming thread, throttled to progress.min_interval_seconds; the
    /// confidence parameters for the CI half-width / ETA are taken from
    /// delta and eps above.
    sim::ProgressOptions progress;

    /// Coverage & occupancy profiling (estimation modes): per-mode visit
    /// counts and time-in-mode occupancy, per-transition fire counts,
    /// strategy decision histograms and a coverage-saturation series over
    /// the accepted paths (docs/coverage.md). Profiling switches estimation
    /// to per-PATH RNG streams, so the profile — and the estimate — is
    /// byte-identical across worker counts at a fixed seed. Rejected for
    /// HypothesisTest and CtmcFlow.
    bool coverage = false;

    /// Front-end phases (parse/instantiate) timed by the caller while
    /// loading the model; prepended to the report's phase breakdown.
    std::vector<telemetry::Phase> frontend_phases;

    /// Optional live metrics registry (support/metrics.hpp). When set, the
    /// estimation engines register and update their instruments in it —
    /// path/step/fire counters, collector queue depth and drain latency,
    /// live estimate/half-width/ETA gauges, budget headroom, checkpoint and
    /// quarantine counters. Instruments only count: results stay
    /// byte-identical with metrics on or off at every (seed, workers).
    /// When null and serve.enabled is set, run_analysis uses a private
    /// registry with one shard per worker.
    metrics::Registry* metrics = nullptr;

    /// Optional structured run journal (support/journal.hpp, docs/
    /// observability.md): run lifecycle, stop-criterion marks, checkpoint
    /// writes, fault quarantines and splitting level events, rendered as
    /// JSONL (the CLI's --log flag) and served live via /journal?tail=N.
    /// The journal only observes: results are byte-identical with it on or
    /// off, and its deterministic fields are byte-identical across worker
    /// counts under per-path streams.
    journal::Journal* journal = nullptr;

    /// Embedded HTTP exporter (estimation modes and beyond — the endpoints
    /// serve whatever the registry and status board hold for any mode).
    ServeOptions serve;

    /// Process-isolated supervised execution (docs/supervision.md): when
    /// processes > 0, an Estimate / EstimateParallel request runs across
    /// that many worker *subprocesses* under a crash-tolerant coordinator
    /// instead of in-process threads. Workers are fresh execs of the
    /// slimsim binary that re-load the model from `model_path` (defaults
    /// to model_label, which the CLI sets to the model file path); a
    /// worker that crashes, stalls past worker_timeout_seconds or corrupts
    /// a frame is killed and its unacknowledged path range reassigned to a
    /// replacement (up to worker_retries restarts per slot, exponential
    /// backoff). Per-path RNG streams keep the result byte-identical to
    /// the in-process runners at every (seed, processes, crash schedule);
    /// exhausted retries degrade to a partial result (RunStatus::Degraded),
    /// never an exception. `injections` is the deterministic fault schedule
    /// (--inject). Rejected with coverage, witness capture and tracing.
    struct SupervisionRequest {
        std::size_t processes = 0; // 0 = in-process execution (default)
        double worker_timeout_seconds = 10.0;
        std::size_t worker_retries = 3;
        std::vector<sim::supervise::FaultInjection> injections;
        std::string worker_exe;  // "" = /proc/self/exe
        std::string model_path;  // "" = model_label
    };
    SupervisionRequest supervision;
};

/// The uniform result: the headline value, the mode-specific result struct
/// (others default-constructed), and the structured run report.
struct AnalysisResult {
    AnalysisMode mode = AnalysisMode::Estimate;

    /// Estimate / CTMC probability; for HypothesisTest the observed
    /// success ratio (the verdict is in `hypothesis` and the report).
    double value = 0.0;

    sim::EstimationResult estimation;  // Estimate / EstimateParallel
    sim::CurveResult curve;            // estimation modes with curve_bounds set
    sim::HypothesisResult hypothesis;  // HypothesisTest
    ctmc::FlowResult flow;             // CtmcFlow
    rare::SplittingResult splitting;   // EstimateSplitting

    /// Coverage profile (enabled=false unless request.coverage was set).
    /// Identical to the report's "coverage" section.
    telemetry::CoverageReport coverage;

    telemetry::RunReport report;

    /// One-paragraph human-readable summary (the CLI's default output).
    [[nodiscard]] std::string to_string() const;
};

// --- compile-once model API ------------------------------------------------
//
// Compilation (expression lowering, hash-consing, per-location
// precomputation; docs/compiled-model.md) happens once per model; the
// returned handle is immutable, thread-safe, and reusable across any number
// of run_analysis() calls and worker threads. compile() is cached
// process-wide by the model's deterministic content hash, so repeated
// compilations of an identical model return the same handle.

/// Compiles an instantiated model (or returns the cached compilation).
[[nodiscard]] eda::CompiledModelPtr
compile(std::shared_ptr<const slim::InstanceModel> model);

/// Front-end pipeline + compile: SLIM source -> parse -> resolve ->
/// instantiate -> validate -> compile. Throws slimsim::Error on any error.
[[nodiscard]] eda::CompiledModelPtr compile_source(std::string_view source,
                                                   std::string filename = "<input>",
                                                   eda::LoadPhases* phases = nullptr);
[[nodiscard]] eda::CompiledModelPtr compile_file(const std::string& path,
                                                 eda::LoadPhases* phases = nullptr);

/// Runs the requested analysis on `net`. Deterministic in
/// (request.seed, request.workers) for every mode. Throws slimsim::Error on
/// invalid requests (e.g. CTMC flow on a timed model or a non-Reach
/// property, Input strategy in parallel runs).
[[nodiscard]] AnalysisResult run_analysis(const eda::Network& net,
                                          const AnalysisRequest& request);

/// Runs the requested analysis on a pre-compiled model: no per-call
/// compilation work beyond wrapping the handle in a Network view.
[[nodiscard]] AnalysisResult run_analysis(const eda::CompiledModelPtr& model,
                                          const AnalysisRequest& request);

} // namespace slimsim
