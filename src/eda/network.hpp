// The Network of Event-Data Automata (paper, Sec. III-A).
//
// The network interprets an instantiated SLIM model: it exposes the timing
// analysis the strategies need (invariant horizons, exact guard-enablement
// interval sets), the Markovian race information, and the execution of
// discrete steps (internal, synchronized, broadcast and Markovian), including
// data-flow propagation, dynamic reconfiguration (activation changes with
// @activation/@deactivation firing) and fault-injection effects.
#pragma once

#include <memory>
#include <span>

#include "eda/compiled.hpp"
#include "eda/state.hpp"
#include "slim/instantiate.hpp"
#include "support/intervals.hpp"
#include "support/rng.hpp"

namespace slimsim::eda {

using slim::ActionId;
using slim::ChannelId;
using slim::InstanceModel;
using slim::ProcessId;

/// Result classification of a discrete step (for traces / debugging).
struct StepInfo {
    std::string description;
    std::vector<std::pair<ProcessId, int>> fired; // (process, transition idx)
};

/// Stable flat numbering of the instantiated network's elements, for
/// profilers that key counters over the model (sim/coverage): every process
/// location ("mode") gets an id in [0, mode_count()) in (process, location)
/// declaration order, every transition an id in [0, transition_count())
/// likewise. Strategy choice points additionally use an *alternative* id
/// space in which sync actions follow the transitions. Ids and names are a
/// pure function of the InstanceModel — never of execution order — so
/// profiles keyed by them merge deterministically across workers.
class ElementIndex {
public:
    explicit ElementIndex(const InstanceModel& m);

    [[nodiscard]] std::size_t mode_count() const { return mode_names_.size(); }
    [[nodiscard]] std::size_t transition_count() const { return transition_names_.size(); }
    [[nodiscard]] std::size_t alternative_count() const {
        return transition_names_.size() + action_names_.size();
    }

    [[nodiscard]] std::uint32_t mode_id(ProcessId p, int location) const {
        return mode_base_[static_cast<std::size_t>(p)] + static_cast<std::uint32_t>(location);
    }
    [[nodiscard]] std::uint32_t transition_id(ProcessId p, int transition) const {
        return transition_base_[static_cast<std::size_t>(p)] +
               static_cast<std::uint32_t>(transition);
    }
    /// Destination mode id of a transition (the mode entered by firing it).
    [[nodiscard]] std::uint32_t transition_dst_mode(std::uint32_t id) const {
        return transition_dst_mode_[id];
    }
    /// Alternative id of a strategy-choice candidate: its transition id for
    /// Tau / BroadcastSend, transition_count() + action id for Sync.
    [[nodiscard]] std::uint32_t alternative_id(const Candidate& c) const {
        if (c.kind == Candidate::Kind::Sync) {
            return static_cast<std::uint32_t>(transition_count()) +
                   static_cast<std::uint32_t>(c.action);
        }
        return transition_id(c.process, c.transition);
    }

    [[nodiscard]] const std::string& mode_name(std::uint32_t id) const {
        return mode_names_[id];
    }
    [[nodiscard]] const std::string& transition_name(std::uint32_t id) const {
        return transition_names_[id];
    }
    /// Name of an alternative id (a transition name or "sync ACTION").
    [[nodiscard]] const std::string& alternative_name(std::uint32_t id) const;
    /// True when firing the transition is an error-event activation (it
    /// belongs to an attached error-model process).
    [[nodiscard]] bool transition_is_error(std::uint32_t id) const {
        return transition_error_[id] != 0;
    }

private:
    std::vector<std::uint32_t> mode_base_;       // per process
    std::vector<std::uint32_t> transition_base_; // per process
    std::vector<std::string> mode_names_;
    std::vector<std::string> transition_names_;
    std::vector<std::string> action_names_; // alternative id - transition_count()
    std::vector<std::uint32_t> transition_dst_mode_;
    std::vector<char> transition_error_;
};

class Network {
public:
    /// Compiles the model via the process-wide compile_model() cache.
    explicit Network(std::shared_ptr<const InstanceModel> model);
    /// Wraps a pre-compiled model (no compilation work).
    explicit Network(CompiledModelPtr compiled);

    [[nodiscard]] const InstanceModel& model() const { return *model_; }
    [[nodiscard]] const CompiledModelPtr& compiled() const { return cm_; }

    /// Benchmark / differential-test mode: evaluate every expression with
    /// the reference tree-walking interpreter instead of compiled programs
    /// (per-call allocations included, as the pre-compilation simulator
    /// behaved). Results are identical; only the cost profile differs.
    void set_reference_interpreter(bool on) { reference_ = on; }
    [[nodiscard]] bool reference_interpreter() const { return reference_; }

    /// Initial state: initial locations, defaults + initial flow evaluation,
    /// initial activation, injections of initial error states applied.
    [[nodiscard]] NetworkState initial_state() const;

    /// Initial state with some processes forced into given locations (used
    /// by the safety analyses to activate failure modes at t = 0). Fault
    /// injections and data flows of the forced configuration are applied.
    [[nodiscard]] NetworkState
    forced_initial_state(std::span<const std::pair<ProcessId, int>> forced) const;

    /// Cached initial state: computed once per scratch, then shared (only a
    /// successful computation is cached, so throwing models keep their
    /// per-path throw semantics). Compiled mode only.
    [[nodiscard]] const NetworkState& initial_state(SimScratch& scratch) const;

    // --- timing analysis ----------------------------------------------------

    /// Largest T such that every active process's location invariant holds
    /// throughout [0, T]. Returns +infinity when unconstrained; 0 when an
    /// invariant forbids any delay.
    [[nodiscard]] double invariant_horizon(const NetworkState& s) const;
    [[nodiscard]] double invariant_horizon(const NetworkState& s,
                                           SimScratch& scratch) const;

    /// All discrete candidates with non-empty enablement sets within
    /// [0, horizon].
    [[nodiscard]] std::vector<Candidate> candidates(const NetworkState& s,
                                                    double horizon) const;
    /// Scratch-buffer variant: the returned span points into
    /// `scratch.candidates` and is valid until the next call on the scratch.
    [[nodiscard]] std::span<const Candidate>
    candidates(const NetworkState& s, double horizon, SimScratch& scratch) const;

    /// Markovian exit rates per active process (only processes whose current
    /// location has exit-rate transitions).
    [[nodiscard]] std::vector<MarkovianRate> markovian_rates(const NetworkState& s) const;
    /// Interned variant: the span points into the scratch's interning table
    /// and stays valid while the scratch exists.
    [[nodiscard]] std::span<const MarkovianRate>
    markovian_rates(const NetworkState& s, SimScratch& scratch) const;

    /// Interned per-variable derivative vector at the current state (same
    /// values as compute_rates; one hash lookup on revisits).
    [[nodiscard]] std::span<const double> rates_of(const NetworkState& s,
                                                   SimScratch& scratch) const;

    // --- evolution ------------------------------------------------------------

    /// Advances time by d: timed variables of active processes evolve with
    /// their location-dependent slopes.
    void elapse(NetworkState& s, double d) const;

    /// Executes a candidate chosen by the strategy (after any elapse). For
    /// Sync, each participant's transition is drawn equiprobably among its
    /// enabled ones; for BroadcastSend, every ready receiver joins. Returns
    /// step details for tracing.
    StepInfo execute(NetworkState& s, const Candidate& c, Rng& rng) const;
    StepInfo execute(NetworkState& s, const Candidate& c, Rng& rng,
                     SimScratch& scratch) const;

    /// Executes the Markovian race winner of `process`: one of its exit-rate
    /// transitions, drawn with probability proportional to its rate.
    StepInfo execute_markovian(NetworkState& s, ProcessId process, Rng& rng) const;
    StepInfo execute_markovian(NetworkState& s, ProcessId process, Rng& rng,
                               SimScratch& scratch) const;

    /// Enumerates every joint discrete move with its probability weight
    /// (used by the exhaustive state-space builder; uniform resolution of
    /// sub-choices). Each element is (firing set, weight); weights of a
    /// candidate sum to 1.
    struct ResolvedMove {
        std::vector<std::pair<ProcessId, int>> firing;
        double probability = 1.0;
    };
    [[nodiscard]] std::vector<ResolvedMove> resolve_moves(const NetworkState& s,
                                                          const Candidate& c) const;
    /// Applies one resolved firing set (state-space builder path).
    StepInfo apply_firing(NetworkState& s,
                          const std::vector<std::pair<ProcessId, int>>& firing) const;

    // --- queries ---------------------------------------------------------------

    /// True if the transition's guard holds in the current valuation.
    [[nodiscard]] bool enabled_now(const NetworkState& s, ProcessId p, int t) const;
    [[nodiscard]] bool enabled_now(const NetworkState& s, ProcessId p, int t,
                                   SimScratch& scratch) const;

    /// Evaluates a Boolean expression with identity bindings (global names),
    /// e.g. a property atom.
    [[nodiscard]] bool eval_global(const NetworkState& s, const expr::Expr& e) const;

    /// Per-variable derivative vector at the current state (active processes'
    /// location slopes; inactive processes freeze).
    void compute_rates(const NetworkState& s, std::vector<double>& rates) const;

    /// Transitions of process p leaving its current location.
    [[nodiscard]] std::span<const int> outgoing(const NetworkState& s, ProcessId p) const;

private:
    // Private implementations share one control flow between the compiled
    // path and the reference interpreter: `scratch == nullptr` means
    // reference mode (tree-walking evaluation, per-call allocations — the
    // pre-compilation behaviour), non-null means compiled programs and
    // scratch buffers. Both produce identical results.
    [[nodiscard]] double invariant_horizon_impl(const NetworkState& s,
                                                SimScratch* scratch) const;
    void candidates_impl(const NetworkState& s, double horizon, SimScratch* scratch,
                         std::vector<Candidate>& out) const;
    StepInfo execute_impl(NetworkState& s, const Candidate& c, Rng& rng,
                          SimScratch* scratch) const;
    StepInfo execute_markovian_impl(NetworkState& s, ProcessId process, Rng& rng,
                                    SimScratch* scratch) const;
    StepInfo apply_firing_impl(NetworkState& s,
                               const std::vector<std::pair<ProcessId, int>>& firing,
                               SimScratch* scratch) const;
    [[nodiscard]] bool enabled_now_impl(const NetworkState& s, ProcessId p, int t,
                                        SimScratch* scratch) const;
    void recompute_activation(NetworkState& s, StepInfo* info,
                              SimScratch* scratch) const;
    void fire_trigger_class(NetworkState& s, std::size_t instance, slim::TriggerClass tc,
                            StepInfo* info, SimScratch* scratch) const;
    void run_flows(NetworkState& s, SimScratch* scratch) const;
    void apply_injections_for_current_states(NetworkState& s) const;
    void fire_one(NetworkState& s, ProcessId p, int t, StepInfo* info,
                  SimScratch* scratch) const;
    [[nodiscard]] IntervalSet guard_times(const NetworkState& s,
                                          std::span<const double> rates, ProcessId p,
                                          int t, SimScratch* scratch) const;
    /// Thread-local scratch for the legacy (scratch-less) entry points;
    /// bound to this network's compiled model. Null in reference mode.
    [[nodiscard]] SimScratch* legacy_scratch() const;

    std::shared_ptr<const InstanceModel> model_;
    CompiledModelPtr cm_;
    bool reference_ = false;
    bool static_activation_ = false; // no mode gates: activation never changes
};

/// Front-end phase timings of build_network_from_* (telemetry run reports).
struct LoadPhases {
    double parse_seconds = 0.0;       // lex + parse + resolve
    double instantiate_seconds = 0.0; // instantiate + validate
};

/// Convenience pipeline: SLIM source -> parsed -> resolved -> instantiated ->
/// validated -> Network. Throws slimsim::Error on any front-end error.
/// `phases`, when non-null, receives the front-end timing breakdown.
[[nodiscard]] Network build_network_from_source(std::string_view source,
                                                std::string filename = "<input>",
                                                LoadPhases* phases = nullptr);
[[nodiscard]] Network build_network_from_file(const std::string& path,
                                              LoadPhases* phases = nullptr);
[[nodiscard]] std::shared_ptr<const InstanceModel>
load_instance_model(std::string_view source, std::string filename = "<input>",
                    LoadPhases* phases = nullptr);

} // namespace slimsim::eda
