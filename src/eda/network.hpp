// The Network of Event-Data Automata (paper, Sec. III-A).
//
// The network interprets an instantiated SLIM model: it exposes the timing
// analysis the strategies need (invariant horizons, exact guard-enablement
// interval sets), the Markovian race information, and the execution of
// discrete steps (internal, synchronized, broadcast and Markovian), including
// data-flow propagation, dynamic reconfiguration (activation changes with
// @activation/@deactivation firing) and fault-injection effects.
#pragma once

#include <memory>
#include <span>

#include "eda/state.hpp"
#include "slim/instantiate.hpp"
#include "support/intervals.hpp"
#include "support/rng.hpp"

namespace slimsim::eda {

using slim::ActionId;
using slim::ChannelId;
using slim::InstanceModel;
using slim::ProcessId;

/// One schedulable discrete alternative at the current state, together with
/// the exact set of delays after which it is enabled (clamped to the
/// invariant horizon). Markovian transitions are *not* candidates; the
/// simulator races sampled exponential delays against the strategy's choice.
struct Candidate {
    enum class Kind : std::uint8_t {
        Tau,           // internal transition of one process
        Sync,          // multi-party synchronization on an event action
        BroadcastSend, // error propagation send (drags ready receivers along)
    };
    Kind kind = Kind::Tau;
    ProcessId process = -1; // Tau / BroadcastSend
    int transition = -1;    // Tau / BroadcastSend
    ActionId action = -1;   // Sync
    IntervalSet enabled;    // delays at which the candidate can fire

    [[nodiscard]] std::string describe(const InstanceModel& m) const;
};

/// Total Markovian exit rate of one process at the current state.
struct MarkovianRate {
    ProcessId process = -1;
    double total_rate = 0.0;
};

/// Result classification of a discrete step (for traces / debugging).
struct StepInfo {
    std::string description;
    std::vector<std::pair<ProcessId, int>> fired; // (process, transition idx)
};

/// Stable flat numbering of the instantiated network's elements, for
/// profilers that key counters over the model (sim/coverage): every process
/// location ("mode") gets an id in [0, mode_count()) in (process, location)
/// declaration order, every transition an id in [0, transition_count())
/// likewise. Strategy choice points additionally use an *alternative* id
/// space in which sync actions follow the transitions. Ids and names are a
/// pure function of the InstanceModel — never of execution order — so
/// profiles keyed by them merge deterministically across workers.
class ElementIndex {
public:
    explicit ElementIndex(const InstanceModel& m);

    [[nodiscard]] std::size_t mode_count() const { return mode_names_.size(); }
    [[nodiscard]] std::size_t transition_count() const { return transition_names_.size(); }
    [[nodiscard]] std::size_t alternative_count() const {
        return transition_names_.size() + action_names_.size();
    }

    [[nodiscard]] std::uint32_t mode_id(ProcessId p, int location) const {
        return mode_base_[static_cast<std::size_t>(p)] + static_cast<std::uint32_t>(location);
    }
    [[nodiscard]] std::uint32_t transition_id(ProcessId p, int transition) const {
        return transition_base_[static_cast<std::size_t>(p)] +
               static_cast<std::uint32_t>(transition);
    }
    /// Destination mode id of a transition (the mode entered by firing it).
    [[nodiscard]] std::uint32_t transition_dst_mode(std::uint32_t id) const {
        return transition_dst_mode_[id];
    }
    /// Alternative id of a strategy-choice candidate: its transition id for
    /// Tau / BroadcastSend, transition_count() + action id for Sync.
    [[nodiscard]] std::uint32_t alternative_id(const Candidate& c) const {
        if (c.kind == Candidate::Kind::Sync) {
            return static_cast<std::uint32_t>(transition_count()) +
                   static_cast<std::uint32_t>(c.action);
        }
        return transition_id(c.process, c.transition);
    }

    [[nodiscard]] const std::string& mode_name(std::uint32_t id) const {
        return mode_names_[id];
    }
    [[nodiscard]] const std::string& transition_name(std::uint32_t id) const {
        return transition_names_[id];
    }
    /// Name of an alternative id (a transition name or "sync ACTION").
    [[nodiscard]] const std::string& alternative_name(std::uint32_t id) const;
    /// True when firing the transition is an error-event activation (it
    /// belongs to an attached error-model process).
    [[nodiscard]] bool transition_is_error(std::uint32_t id) const {
        return transition_error_[id] != 0;
    }

private:
    std::vector<std::uint32_t> mode_base_;       // per process
    std::vector<std::uint32_t> transition_base_; // per process
    std::vector<std::string> mode_names_;
    std::vector<std::string> transition_names_;
    std::vector<std::string> action_names_; // alternative id - transition_count()
    std::vector<std::uint32_t> transition_dst_mode_;
    std::vector<char> transition_error_;
};

class Network {
public:
    explicit Network(std::shared_ptr<const InstanceModel> model);

    [[nodiscard]] const InstanceModel& model() const { return *model_; }

    /// Initial state: initial locations, defaults + initial flow evaluation,
    /// initial activation, injections of initial error states applied.
    [[nodiscard]] NetworkState initial_state() const;

    /// Initial state with some processes forced into given locations (used
    /// by the safety analyses to activate failure modes at t = 0). Fault
    /// injections and data flows of the forced configuration are applied.
    [[nodiscard]] NetworkState
    forced_initial_state(std::span<const std::pair<ProcessId, int>> forced) const;

    // --- timing analysis ----------------------------------------------------

    /// Largest T such that every active process's location invariant holds
    /// throughout [0, T]. Returns +infinity when unconstrained; 0 when an
    /// invariant forbids any delay.
    [[nodiscard]] double invariant_horizon(const NetworkState& s) const;

    /// All discrete candidates with non-empty enablement sets within
    /// [0, horizon].
    [[nodiscard]] std::vector<Candidate> candidates(const NetworkState& s,
                                                    double horizon) const;

    /// Markovian exit rates per active process (only processes whose current
    /// location has exit-rate transitions).
    [[nodiscard]] std::vector<MarkovianRate> markovian_rates(const NetworkState& s) const;

    // --- evolution ------------------------------------------------------------

    /// Advances time by d: timed variables of active processes evolve with
    /// their location-dependent slopes.
    void elapse(NetworkState& s, double d) const;

    /// Executes a candidate chosen by the strategy (after any elapse). For
    /// Sync, each participant's transition is drawn equiprobably among its
    /// enabled ones; for BroadcastSend, every ready receiver joins. Returns
    /// step details for tracing.
    StepInfo execute(NetworkState& s, const Candidate& c, Rng& rng) const;

    /// Executes the Markovian race winner of `process`: one of its exit-rate
    /// transitions, drawn with probability proportional to its rate.
    StepInfo execute_markovian(NetworkState& s, ProcessId process, Rng& rng) const;

    /// Enumerates every joint discrete move with its probability weight
    /// (used by the exhaustive state-space builder; uniform resolution of
    /// sub-choices). Each element is (firing set, weight); weights of a
    /// candidate sum to 1.
    struct ResolvedMove {
        std::vector<std::pair<ProcessId, int>> firing;
        double probability = 1.0;
    };
    [[nodiscard]] std::vector<ResolvedMove> resolve_moves(const NetworkState& s,
                                                          const Candidate& c) const;
    /// Applies one resolved firing set (state-space builder path).
    StepInfo apply_firing(NetworkState& s,
                          const std::vector<std::pair<ProcessId, int>>& firing) const;

    // --- queries ---------------------------------------------------------------

    /// True if the transition's guard holds in the current valuation.
    [[nodiscard]] bool enabled_now(const NetworkState& s, ProcessId p, int t) const;

    /// Evaluates a Boolean expression with identity bindings (global names),
    /// e.g. a property atom.
    [[nodiscard]] bool eval_global(const NetworkState& s, const expr::Expr& e) const;

    /// Per-variable derivative vector at the current state (active processes'
    /// location slopes; inactive processes freeze).
    void compute_rates(const NetworkState& s, std::vector<double>& rates) const;

    /// Transitions of process p leaving its current location.
    [[nodiscard]] std::span<const int> outgoing(const NetworkState& s, ProcessId p) const;

private:
    void recompute_activation(NetworkState& s, Rng* rng, StepInfo* info) const;
    void fire_trigger_class(NetworkState& s, std::size_t instance, slim::TriggerClass tc,
                            StepInfo* info) const;
    void run_flows(NetworkState& s) const;
    void apply_injections_for_current_states(NetworkState& s) const;
    void fire_one(NetworkState& s, ProcessId p, int t, StepInfo* info) const;
    [[nodiscard]] IntervalSet guard_times(const NetworkState& s,
                                          std::span<const double> rates, ProcessId p,
                                          int t) const;

    std::shared_ptr<const InstanceModel> model_;
    // Precomputed: per process, per location, outgoing transition indices.
    std::vector<std::vector<std::vector<int>>> outgoing_;
};

/// Front-end phase timings of build_network_from_* (telemetry run reports).
struct LoadPhases {
    double parse_seconds = 0.0;       // lex + parse + resolve
    double instantiate_seconds = 0.0; // instantiate + validate
};

/// Convenience pipeline: SLIM source -> parsed -> resolved -> instantiated ->
/// validated -> Network. Throws slimsim::Error on any front-end error.
/// `phases`, when non-null, receives the front-end timing breakdown.
[[nodiscard]] Network build_network_from_source(std::string_view source,
                                                std::string filename = "<input>",
                                                LoadPhases* phases = nullptr);
[[nodiscard]] Network build_network_from_file(const std::string& path,
                                              LoadPhases* phases = nullptr);
[[nodiscard]] std::shared_ptr<const InstanceModel>
load_instance_model(std::string_view source, std::string filename = "<input>",
                    LoadPhases* phases = nullptr);

} // namespace slimsim::eda
