#include "eda/network.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "expr/timeline.hpp"
#include "slim/parser.hpp"
#include "slim/validate.hpp"

namespace slimsim::eda {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using slim::InstAssign;
using slim::Instance;
using slim::InstProcess;
using slim::InstTransition;
using slim::TriggerClass;
} // namespace

ElementIndex::ElementIndex(const InstanceModel& m) {
    mode_base_.reserve(m.processes.size());
    transition_base_.reserve(m.processes.size());
    for (const auto& p : m.processes) {
        mode_base_.push_back(static_cast<std::uint32_t>(mode_names_.size()));
        transition_base_.push_back(static_cast<std::uint32_t>(transition_names_.size()));
        for (const auto& loc : p.locations) mode_names_.push_back(p.name + "." + loc.name);
        for (const auto& t : p.transitions) {
            std::string name = p.name + ": " + p.locations[static_cast<std::size_t>(t.src)].name +
                               " -> " + p.locations[static_cast<std::size_t>(t.dst)].name;
            if (!t.label.empty()) name += " [" + t.label + "]";
            transition_names_.push_back(std::move(name));
            transition_dst_mode_.push_back(mode_base_.back() + static_cast<std::uint32_t>(t.dst));
            transition_error_.push_back(p.is_error ? 1 : 0);
        }
    }
    // Two transitions of one process may share src, dst and label (differing
    // only in guards); qualify repeated names by id so every name is unique
    // (Prometheus series keyed by name must not collide).
    std::map<std::string, std::uint32_t> uses;
    for (auto& name : transition_names_) ++uses[name];
    std::map<std::string, std::uint32_t> next;
    for (std::size_t id = 0; id < transition_names_.size(); ++id) {
        std::string& name = transition_names_[id];
        if (uses[name] > 1) name += " #" + std::to_string(++next[name]);
    }
    action_names_.reserve(m.actions.size());
    for (const auto& a : m.actions) action_names_.push_back("sync " + a.name);
}

const std::string& ElementIndex::alternative_name(std::uint32_t id) const {
    if (id < transition_count()) return transition_names_[id];
    return action_names_[id - transition_count()];
}

Network::Network(std::shared_ptr<const InstanceModel> model)
    : Network(compile_model(std::move(model))) {}

Network::Network(CompiledModelPtr compiled)
    : model_(compiled->model_ptr()), cm_(std::move(compiled)) {
    // Without mode-gated subcomponents every instance is active in every
    // state, so the per-step activation fixpoint is a no-op and is skipped.
    static_activation_ =
        std::none_of(model_->instances.begin(), model_->instances.end(),
                     [](const Instance& i) { return !i.parent_modes.empty(); });
}

SimScratch* Network::legacy_scratch() const {
    if (reference_) return nullptr;
    thread_local SimScratch scratch;
    scratch.bind(*cm_);
    return &scratch;
}

NetworkState Network::initial_state() const {
    NetworkState s;
    s.locations.reserve(model_->processes.size());
    for (const InstProcess& p : model_->processes) s.locations.push_back(p.initial_location);
    s.values = model_->initial_valuation();
    s.active.assign(model_->instances.size(), 1);
    for (std::size_t i = 0; i < model_->instances.size(); ++i) {
        const Instance& inst = model_->instances[i];
        if (inst.parent < 0) continue;
        const auto parent = static_cast<std::size_t>(inst.parent);
        bool a = s.active[parent] != 0;
        if (a && !inst.parent_modes.empty()) {
            const int loc = s.locations[static_cast<std::size_t>(
                model_->instances[parent].process)];
            a = std::binary_search(inst.parent_modes.begin(), inst.parent_modes.end(), loc);
        }
        s.active[i] = a ? 1 : 0;
    }
    apply_injections_for_current_states(s);
    run_flows(s, legacy_scratch());
    apply_injections_for_current_states(s);
    return s;
}

const NetworkState& Network::initial_state(SimScratch& scratch) const {
    scratch.bind(*cm_);
    if (!scratch.initial) scratch.initial = initial_state();
    return *scratch.initial;
}

NetworkState Network::forced_initial_state(
    std::span<const std::pair<ProcessId, int>> forced) const {
    NetworkState s = initial_state();
    for (const auto& [proc, loc] : forced) {
        SLIMSIM_ASSERT(proc >= 0 &&
                       static_cast<std::size_t>(proc) < model_->processes.size());
        SLIMSIM_ASSERT(loc >= 0 &&
                       static_cast<std::size_t>(loc) <
                           model_->processes[static_cast<std::size_t>(proc)].locations.size());
        s.locations[static_cast<std::size_t>(proc)] = loc;
    }
    apply_injections_for_current_states(s);
    run_flows(s, legacy_scratch());
    apply_injections_for_current_states(s);
    return s;
}

// --- timing analysis -------------------------------------------------------------

double Network::invariant_horizon_impl(const NetworkState& s, SimScratch* scratch) const {
    if (scratch != nullptr) {
        // The interned config lists exactly the active processes' invariants
        // (process order), so the per-process sweep below collapses to them.
        const InternedConfig& cfg = scratch->interner.intern(s, *cm_);
        double horizon = kInf;
        for (const expr::Program* inv : cfg.invariants) {
            const auto prefix = inv->satisfying_times(s.values, cfg.rates, scratch->eval)
                                    .prefix_horizon();
            if (!prefix) return 0.0; // invariant already violated: urgent
            horizon = std::min(horizon, *prefix);
            if (horizon == 0.0) return 0.0;
        }
        return horizon;
    }
    std::vector<double> rates_vec;
    compute_rates(s, rates_vec);
    const std::span<const double> rates = rates_vec;
    double horizon = kInf;
    for (std::size_t p = 0; p < model_->processes.size(); ++p) {
        const InstProcess& proc = model_->processes[p];
        if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
        const auto loc = static_cast<std::size_t>(s.locations[p]);
        if (proc.locations[loc].invariant == nullptr) continue;
        const expr::TimedEvalContext ctx{s.values, *proc.bindings, rates};
        const IntervalSet sat = expr::satisfying_times(*proc.locations[loc].invariant, ctx);
        const auto prefix = sat.prefix_horizon();
        if (!prefix) return 0.0; // invariant already violated: urgent
        horizon = std::min(horizon, *prefix);
        if (horizon == 0.0) return 0.0;
    }
    return horizon;
}

double Network::invariant_horizon(const NetworkState& s) const {
    return invariant_horizon_impl(s, legacy_scratch());
}

double Network::invariant_horizon(const NetworkState& s, SimScratch& scratch) const {
    scratch.bind(*cm_);
    return invariant_horizon_impl(s, &scratch);
}

IntervalSet Network::guard_times(const NetworkState& s, std::span<const double> rates,
                                 ProcessId p, int t, SimScratch* scratch) const {
    const InstProcess& proc = model_->processes[static_cast<std::size_t>(p)];
    if (scratch == nullptr) {
        const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
        if (tr.guard == nullptr) return IntervalSet::all();
        const expr::TimedEvalContext ctx{s.values, *proc.bindings, rates};
        return expr::satisfying_times(*tr.guard, ctx);
    }
    const expr::ProgramPtr& guard =
        cm_->process(p).transitions[static_cast<std::size_t>(t)].guard;
    if (guard == nullptr) return IntervalSet::all();
    return guard->satisfying_times(s.values, rates, scratch->eval);
}

void Network::candidates_impl(const NetworkState& s, double horizon, SimScratch* scratch,
                              std::vector<Candidate>& out) const {
    std::vector<double> rates_vec;
    std::span<const double> rates;
    const InternedConfig* cfg = nullptr;
    if (scratch == nullptr) {
        compute_rates(s, rates_vec);
        rates = rates_vec;
    } else {
        cfg = &scratch->interner.intern(s, *cm_);
        rates = cfg->rates;
    }
    const IntervalSet window(0.0, horizon);
    out.clear();

    // Internal transitions and broadcast sends. The interned tau list is
    // exactly the legacy filter below applied in process-then-outgoing order,
    // precomputed once per discrete configuration.
    if (cfg != nullptr) {
        for (const auto& tc : cfg->taus) {
            IntervalSet set =
                (tc.guard != nullptr
                     ? tc.guard->satisfying_times(s.values, rates, scratch->eval)
                     : IntervalSet::all())
                    .intersect(window);
            if (set.empty()) continue;
            Candidate c;
            c.kind = tc.kind;
            c.process = tc.process;
            c.transition = tc.transition;
            c.enabled = std::move(set);
            out.push_back(std::move(c));
        }
    } else {
        for (std::size_t p = 0; p < model_->processes.size(); ++p) {
            const InstProcess& proc = model_->processes[p];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            for (const int t : outgoing(s, static_cast<ProcessId>(p))) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.markovian() || tr.trigger != TriggerClass::Normal ||
                    tr.receive_only() || tr.action != slim::kTau) {
                    continue;
                }
                IntervalSet set =
                    guard_times(s, rates, static_cast<ProcessId>(p), t, scratch)
                        .intersect(window);
                if (set.empty()) continue;
                Candidate c;
                c.kind = tr.channel == slim::kNoChannel
                             ? Candidate::Kind::Tau
                             : Candidate::Kind::BroadcastSend;
                c.process = static_cast<ProcessId>(p);
                c.transition = t;
                c.enabled = std::move(set);
                out.push_back(std::move(c));
            }
        }
    }

    // Synchronizations: every active participant must be ready, and at least
    // one sender must be among the ready transitions.
    for (std::size_t a = 0; a < model_->actions.size(); ++a) {
        const auto& def = model_->actions[a];
        IntervalSet inter = window;
        IntervalSet senders;
        bool any_participant = false;
        for (const ProcessId pid : def.participants) {
            const InstProcess& proc = model_->processes[static_cast<std::size_t>(pid)];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            any_participant = true;
            IntervalSet mine;
            for (const int t : outgoing(s, pid)) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.action != static_cast<ActionId>(a) ||
                    tr.trigger != TriggerClass::Normal) {
                    continue;
                }
                IntervalSet g = guard_times(s, rates, pid, t, scratch);
                if (tr.role == slim::PortDir::Out) senders = senders.unite(g);
                mine = mine.unite(std::move(g));
            }
            inter = inter.intersect(mine);
            if (inter.empty()) break;
        }
        if (!any_participant) continue;
        IntervalSet set = inter.intersect(senders);
        if (set.empty()) continue;
        Candidate c;
        c.kind = Candidate::Kind::Sync;
        c.action = static_cast<ActionId>(a);
        c.enabled = std::move(set);
        out.push_back(std::move(c));
    }
}

std::vector<Candidate> Network::candidates(const NetworkState& s, double horizon) const {
    std::vector<Candidate> out;
    candidates_impl(s, horizon, legacy_scratch(), out);
    return out;
}

std::span<const Candidate> Network::candidates(const NetworkState& s, double horizon,
                                               SimScratch& scratch) const {
    scratch.bind(*cm_);
    candidates_impl(s, horizon, &scratch, scratch.candidates);
    return scratch.candidates;
}

std::vector<MarkovianRate> Network::markovian_rates(const NetworkState& s) const {
    if (SimScratch* scratch = legacy_scratch()) {
        const auto span = markovian_rates(s, *scratch);
        return {span.begin(), span.end()};
    }
    std::vector<MarkovianRate> out;
    for (std::size_t p = 0; p < model_->processes.size(); ++p) {
        const InstProcess& proc = model_->processes[p];
        if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
        double total = 0.0;
        for (const int t : outgoing(s, static_cast<ProcessId>(p))) {
            total += proc.transitions[static_cast<std::size_t>(t)].rate;
        }
        if (total > 0.0) out.push_back({static_cast<ProcessId>(p), total});
    }
    return out;
}

std::span<const MarkovianRate> Network::markovian_rates(const NetworkState& s,
                                                        SimScratch& scratch) const {
    scratch.bind(*cm_);
    return scratch.interner.intern(s, *cm_).markov;
}

std::span<const double> Network::rates_of(const NetworkState& s,
                                          SimScratch& scratch) const {
    scratch.bind(*cm_);
    return scratch.interner.intern(s, *cm_).rates;
}

void Network::elapse(NetworkState& s, double d) const {
    SLIMSIM_ASSERT(d >= 0.0);
    if (d == 0.0) return;
    for (std::size_t p = 0; p < model_->processes.size(); ++p) {
        const InstProcess& proc = model_->processes[p];
        if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
        const auto& loc = proc.locations[static_cast<std::size_t>(s.locations[p])];
        for (const auto& [var, slope] : loc.rates) {
            s.values[var] = Value(s.values[var].as_real() + slope * d);
        }
    }
    s.time += d;
}

bool Network::enabled_now_impl(const NetworkState& s, ProcessId p, int t,
                               SimScratch* scratch) const {
    if (scratch == nullptr) {
        const InstProcess& proc = model_->processes[static_cast<std::size_t>(p)];
        const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
        if (tr.guard == nullptr) return true;
        return expr::testing::reference_evaluate(
                   *tr.guard, expr::EvalContext{s.values, *proc.bindings})
            .as_bool();
    }
    const expr::ProgramPtr& guard =
        cm_->process(p).transitions[static_cast<std::size_t>(t)].guard;
    if (guard == nullptr) return true;
    return guard->run_bool(s.values, scratch->eval);
}

bool Network::enabled_now(const NetworkState& s, ProcessId p, int t) const {
    return enabled_now_impl(s, p, t, legacy_scratch());
}

bool Network::enabled_now(const NetworkState& s, ProcessId p, int t,
                          SimScratch& scratch) const {
    scratch.bind(*cm_);
    return enabled_now_impl(s, p, t, &scratch);
}

bool Network::eval_global(const NetworkState& s, const expr::Expr& e) const {
    if (reference_) {
        return expr::testing::reference_evaluate(e, expr::EvalContext{s.values, {}})
            .as_bool();
    }
    return expr::evaluate_bool(e, expr::EvalContext{s.values, {}});
}

void Network::compute_rates(const NetworkState& s, std::vector<double>& rates) const {
    rates.assign(model_->vars.size(), 0.0);
    for (std::size_t p = 0; p < model_->processes.size(); ++p) {
        const InstProcess& proc = model_->processes[p];
        if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
        const auto& loc = proc.locations[static_cast<std::size_t>(s.locations[p])];
        for (const auto& [var, slope] : loc.rates) rates[var] = slope;
    }
}

std::span<const int> Network::outgoing(const NetworkState& s, ProcessId p) const {
    return cm_->process(p)
        .locations[static_cast<std::size_t>(s.locations[static_cast<std::size_t>(p)])]
        .outgoing;
}

// --- execution ------------------------------------------------------------------

namespace {

/// Writes a value into a variable, enforcing integer ranges.
void write_var(const InstanceModel& m, NetworkState& s, VarId var, const Value& raw) {
    const auto& def = m.vars[var];
    const Value v = raw.coerce_to(def.type);
    if (def.type.is_int() && def.type.lo) {
        const std::int64_t i = v.as_int();
        if (i < *def.type.lo || i > *def.type.hi) {
            throw Error("assignment of " + v.to_string() + " to `" + def.full_name +
                        "` violates its range " + def.type.to_string());
        }
    }
    s.values[var] = v;
}

} // namespace

void Network::apply_injections_for_current_states(NetworkState& s) const {
    for (const slim::Injection& inj : model_->injections) {
        if (s.locations[static_cast<std::size_t>(inj.process)] == inj.state) {
            s.values[inj.target] = inj.value;
        }
    }
}

void Network::run_flows(NetworkState& s, SimScratch* scratch) const {
    for (std::size_t i = 0; i < model_->flows.size(); ++i) {
        const slim::InstFlow& f = model_->flows[i];
        if (!s.instance_active(static_cast<std::size_t>(f.owner))) continue;
        if (f.gate_process >= 0 && !f.gate_locations.empty()) {
            const int loc = s.locations[static_cast<std::size_t>(f.gate_process)];
            if (!std::binary_search(f.gate_locations.begin(), f.gate_locations.end(), loc)) {
                continue;
            }
        }
        Value v;
        if (scratch == nullptr) {
            v = expr::testing::reference_evaluate(
                *f.value, expr::EvalContext{s.values, *f.bindings});
        } else {
            v = cm_->flow_program(i)->run(s.values, scratch->eval);
        }
        write_var(*model_, s, f.target, v);
    }
}

/// Fires one transition in isolation: effects evaluated against the current
/// valuation, location change, timer reset, injection restore on leaving an
/// injected error state. Used for activation cascades; the synchronized main
/// step pre-evaluates effects jointly in apply_firing.
void Network::fire_one(NetworkState& s, ProcessId p, int t, StepInfo* info,
                       SimScratch* scratch) const {
    const InstProcess& proc = model_->processes[static_cast<std::size_t>(p)];
    const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
    const int old_loc = s.locations[static_cast<std::size_t>(p)];

    std::vector<std::pair<VarId, Value>> writes;
    writes.reserve(tr.effects.size());
    if (scratch == nullptr) {
        const expr::EvalContext ctx{s.values, *proc.bindings};
        for (const InstAssign& a : tr.effects) {
            writes.emplace_back((*proc.bindings)[a.target],
                                expr::testing::reference_evaluate(*a.value, ctx));
        }
    } else {
        const CompiledTransition& ct =
            cm_->process(p).transitions[static_cast<std::size_t>(t)];
        for (const auto& [target, prog] : ct.effects) {
            writes.emplace_back(target, prog->run(s.values, scratch->eval));
        }
    }
    s.locations[static_cast<std::size_t>(p)] = tr.dst;
    s.values[proc.timer] = Value(0.0);
    for (const auto& [var, val] : writes) write_var(*model_, s, var, val);
    if (proc.is_error && tr.dst != old_loc) {
        for (const slim::Injection& inj : model_->injections) {
            if (inj.process == p && inj.state == old_loc) s.values[inj.target] = inj.restore;
        }
    }
    if (info != nullptr) info->fired.emplace_back(p, t);
}

void Network::recompute_activation(NetworkState& s, StepInfo* info,
                                   SimScratch* scratch) const {
    if (static_activation_) return;
    for (int round = 0; round < 64; ++round) {
        std::vector<char> next(model_->instances.size(), 1);
        for (std::size_t i = 0; i < model_->instances.size(); ++i) {
            const Instance& inst = model_->instances[i];
            if (inst.parent < 0) continue;
            const auto parent = static_cast<std::size_t>(inst.parent);
            // Instances are ordered parents-first, so next[parent] already
            // reflects this round's cascaded deactivations.
            bool a = next[parent] != 0;
            if (a && !inst.parent_modes.empty()) {
                const int loc = s.locations[static_cast<std::size_t>(
                    model_->instances[parent].process)];
                a = std::binary_search(inst.parent_modes.begin(), inst.parent_modes.end(),
                                       loc);
            }
            next[i] = a ? 1 : 0;
        }
        bool changed = false;
        std::vector<std::size_t> activated;
        std::vector<std::size_t> deactivated;
        for (std::size_t i = 0; i < model_->instances.size(); ++i) {
            if (next[i] == s.active[i]) continue;
            changed = true;
            (next[i] != 0 ? activated : deactivated).push_back(i);
        }
        if (!changed) return;

        // Deactivation transitions fire before the instance freezes.
        for (const std::size_t i : deactivated) {
            fire_trigger_class(s, i, TriggerClass::OnDeactivate, info, scratch);
        }
        s.active = std::move(next);
        for (const std::size_t i : activated) {
            fire_trigger_class(s, i, TriggerClass::OnActivate, info, scratch);
        }
    }
    throw Error("activation/deactivation cascade did not stabilize (model error)");
}

StepInfo Network::apply_firing_impl(NetworkState& s,
                                    const std::vector<std::pair<ProcessId, int>>& firing,
                                    SimScratch* scratch) const {
    StepInfo info;
    // Synchronized semantics: all effect right-hand sides are evaluated
    // against the pre-state, then applied (in process order on conflicts).
    std::vector<std::pair<VarId, Value>> writes_local;
    std::vector<std::pair<VarId, Value>>& writes =
        scratch != nullptr ? scratch->writes : writes_local;
    writes.clear();
    for (const auto& [p, t] : firing) {
        const InstProcess& proc = model_->processes[static_cast<std::size_t>(p)];
        const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
        if (scratch == nullptr) {
            const expr::EvalContext ctx{s.values, *proc.bindings};
            for (const InstAssign& a : tr.effects) {
                writes.emplace_back((*proc.bindings)[a.target],
                                    expr::testing::reference_evaluate(*a.value, ctx));
            }
        } else {
            const CompiledTransition& ct =
                cm_->process(p).transitions[static_cast<std::size_t>(t)];
            for (const auto& [target, prog] : ct.effects) {
                writes.emplace_back(target, prog->run(s.values, scratch->eval));
            }
        }
    }
    std::vector<std::pair<ProcessId, int>> left; // (error process, old location)
    for (const auto& [p, t] : firing) {
        const InstProcess& proc = model_->processes[static_cast<std::size_t>(p)];
        const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
        const int old_loc = s.locations[static_cast<std::size_t>(p)];
        s.locations[static_cast<std::size_t>(p)] = tr.dst;
        s.values[proc.timer] = Value(0.0);
        if (proc.is_error && tr.dst != old_loc) left.emplace_back(p, old_loc);
        info.fired.emplace_back(p, t);
    }
    for (const auto& [var, val] : writes) write_var(*model_, s, var, val);
    for (const auto& [p, old_loc] : left) {
        for (const slim::Injection& inj : model_->injections) {
            if (inj.process == p && inj.state == old_loc) s.values[inj.target] = inj.restore;
        }
    }
    recompute_activation(s, &info, scratch);
    // Injected failure values must both feed the data flows (a failed
    // sensor's wrong reading propagates downstream) and override flows into
    // injected targets (a failed filter's zero output wins over its own
    // flow), hence the inject / flow / inject sandwich.
    apply_injections_for_current_states(s);
    run_flows(s, scratch);
    apply_injections_for_current_states(s);
    return info;
}

StepInfo Network::apply_firing(NetworkState& s,
                               const std::vector<std::pair<ProcessId, int>>& firing) const {
    return apply_firing_impl(s, firing, legacy_scratch());
}

StepInfo Network::execute_impl(NetworkState& s, const Candidate& c, Rng& rng,
                               SimScratch* scratch) const {
    std::vector<std::pair<ProcessId, int>> firing_local;
    std::vector<std::pair<ProcessId, int>>& firing =
        scratch != nullptr ? scratch->firing : firing_local;
    firing.clear();
    std::vector<int> ready_local;
    std::vector<int>& ready = scratch != nullptr ? scratch->ready : ready_local;
    switch (c.kind) {
    case Candidate::Kind::Tau:
        SLIMSIM_ASSERT(enabled_now_impl(s, c.process, c.transition, scratch));
        firing.emplace_back(c.process, c.transition);
        break;
    case Candidate::Kind::BroadcastSend: {
        SLIMSIM_ASSERT(enabled_now_impl(s, c.process, c.transition, scratch));
        firing.emplace_back(c.process, c.transition);
        const InstProcess& sender = model_->processes[static_cast<std::size_t>(c.process)];
        const ChannelId ch =
            sender.transitions[static_cast<std::size_t>(c.transition)].channel;
        for (const ProcessId peer : sender.propagation_peers) {
            const InstProcess& proc = model_->processes[static_cast<std::size_t>(peer)];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            ready.clear();
            for (const int t : outgoing(s, peer)) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.channel == ch && tr.role == slim::PortDir::In &&
                    enabled_now_impl(s, peer, t, scratch)) {
                    ready.push_back(t);
                }
            }
            if (!ready.empty()) {
                firing.emplace_back(peer, ready[rng.uniform_index(ready.size())]);
            }
        }
        break;
    }
    case Candidate::Kind::Sync: {
        const auto& def = model_->actions[static_cast<std::size_t>(c.action)];
        for (const ProcessId pid : def.participants) {
            const InstProcess& proc = model_->processes[static_cast<std::size_t>(pid)];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            ready.clear();
            for (const int t : outgoing(s, pid)) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.action == c.action && tr.trigger == TriggerClass::Normal &&
                    enabled_now_impl(s, pid, t, scratch)) {
                    ready.push_back(t);
                }
            }
            SLIMSIM_ASSERT(!ready.empty()); // the strategy chose an enabled time
            firing.emplace_back(pid, ready[rng.uniform_index(ready.size())]);
        }
        break;
    }
    }
    return apply_firing_impl(s, firing, scratch);
}

StepInfo Network::execute(NetworkState& s, const Candidate& c, Rng& rng) const {
    return execute_impl(s, c, rng, legacy_scratch());
}

StepInfo Network::execute(NetworkState& s, const Candidate& c, Rng& rng,
                          SimScratch& scratch) const {
    scratch.bind(*cm_);
    return execute_impl(s, c, rng, &scratch);
}

StepInfo Network::execute_markovian_impl(NetworkState& s, ProcessId process, Rng& rng,
                                         SimScratch* scratch) const {
    const InstProcess& proc = model_->processes[static_cast<std::size_t>(process)];
    double total = 0.0;
    if (scratch != nullptr) {
        total = cm_->process(process)
                    .locations[static_cast<std::size_t>(
                        s.locations[static_cast<std::size_t>(process)])]
                    .markov_total;
    } else {
        for (const int t : outgoing(s, process)) {
            total += proc.transitions[static_cast<std::size_t>(t)].rate;
        }
    }
    SLIMSIM_ASSERT(total > 0.0);
    double pick = rng.uniform01() * total;
    int chosen = -1;
    for (const int t : outgoing(s, process)) {
        const double r = proc.transitions[static_cast<std::size_t>(t)].rate;
        if (r <= 0.0) continue;
        chosen = t;
        if (pick <= r) break;
        pick -= r;
    }
    SLIMSIM_ASSERT(chosen >= 0);
    std::vector<std::pair<ProcessId, int>> firing_local;
    std::vector<std::pair<ProcessId, int>>& firing =
        scratch != nullptr ? scratch->firing : firing_local;
    firing.clear();
    firing.emplace_back(process, chosen);
    return apply_firing_impl(s, firing, scratch);
}

StepInfo Network::execute_markovian(NetworkState& s, ProcessId process, Rng& rng) const {
    return execute_markovian_impl(s, process, rng, legacy_scratch());
}

StepInfo Network::execute_markovian(NetworkState& s, ProcessId process, Rng& rng,
                                    SimScratch& scratch) const {
    scratch.bind(*cm_);
    return execute_markovian_impl(s, process, rng, &scratch);
}

std::vector<Network::ResolvedMove> Network::resolve_moves(const NetworkState& s,
                                                          const Candidate& c) const {
    // Enumerates the per-process sub-choices of a candidate with their
    // equiprobable weights (exhaustive builder path; no time analysis here —
    // callers use this on untimed models where enabledness is immediate).
    std::vector<std::vector<std::pair<ProcessId, int>>> options; // per participant
    switch (c.kind) {
    case Candidate::Kind::Tau:
        options.push_back({{c.process, c.transition}});
        break;
    case Candidate::Kind::BroadcastSend: {
        options.push_back({{c.process, c.transition}});
        const InstProcess& sender = model_->processes[static_cast<std::size_t>(c.process)];
        const ChannelId ch =
            sender.transitions[static_cast<std::size_t>(c.transition)].channel;
        for (const ProcessId peer : sender.propagation_peers) {
            const InstProcess& proc = model_->processes[static_cast<std::size_t>(peer)];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            std::vector<std::pair<ProcessId, int>> mine;
            for (const int t : outgoing(s, peer)) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.channel == ch && tr.role == slim::PortDir::In &&
                    enabled_now(s, peer, t)) {
                    mine.emplace_back(peer, t);
                }
            }
            if (!mine.empty()) options.push_back(std::move(mine));
        }
        break;
    }
    case Candidate::Kind::Sync: {
        const auto& def = model_->actions[static_cast<std::size_t>(c.action)];
        for (const ProcessId pid : def.participants) {
            const InstProcess& proc = model_->processes[static_cast<std::size_t>(pid)];
            if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
            std::vector<std::pair<ProcessId, int>> mine;
            for (const int t : outgoing(s, pid)) {
                const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
                if (tr.action == c.action && tr.trigger == TriggerClass::Normal &&
                    enabled_now(s, pid, t)) {
                    mine.emplace_back(pid, t);
                }
            }
            SLIMSIM_ASSERT(!mine.empty());
            options.push_back(std::move(mine));
        }
        break;
    }
    }
    std::vector<ResolvedMove> moves;
    moves.push_back({{}, 1.0});
    for (const auto& opts : options) {
        std::vector<ResolvedMove> next;
        next.reserve(moves.size() * opts.size());
        const double w = 1.0 / static_cast<double>(opts.size());
        for (const auto& m : moves) {
            for (const auto& o : opts) {
                ResolvedMove nm = m;
                nm.firing.push_back(o);
                nm.probability *= w;
                next.push_back(std::move(nm));
            }
        }
        moves = std::move(next);
    }
    return moves;
}

// --- activation trigger firing helper ----------------------------------------

void Network::fire_trigger_class(NetworkState& s, std::size_t instance, TriggerClass tc,
                                 StepInfo* info, SimScratch* scratch) const {
    const Instance& inst = model_->instances[instance];
    for (const ProcessId pid : {inst.process, inst.error_process}) {
        if (pid < 0) continue;
        const InstProcess& proc = model_->processes[static_cast<std::size_t>(pid)];
        for (const int t : outgoing(s, pid)) {
            const InstTransition& tr = proc.transitions[static_cast<std::size_t>(t)];
            if (tr.trigger == tc && enabled_now_impl(s, pid, t, scratch)) {
                fire_one(s, pid, t, info, scratch);
                break; // deterministic: first enabled in declaration order
            }
        }
    }
}

// --- pipeline helpers -----------------------------------------------------------

std::shared_ptr<const InstanceModel> load_instance_model(std::string_view source,
                                                         std::string filename,
                                                         LoadPhases* phases) {
    const auto t0 = std::chrono::steady_clock::now();
    auto resolved = std::make_shared<slim::ResolvedModel>(
        slim::resolve(slim::parse_model(source, std::move(filename))));
    const auto t1 = std::chrono::steady_clock::now();
    auto model = std::make_shared<InstanceModel>(slim::instantiate(std::move(resolved)));
    slim::validate_or_throw(*model);
    if (phases != nullptr) {
        const auto t2 = std::chrono::steady_clock::now();
        phases->parse_seconds = std::chrono::duration<double>(t1 - t0).count();
        phases->instantiate_seconds = std::chrono::duration<double>(t2 - t1).count();
    }
    return model;
}

Network build_network_from_source(std::string_view source, std::string filename,
                                  LoadPhases* phases) {
    return Network(load_instance_model(source, std::move(filename), phases));
}

Network build_network_from_file(const std::string& path, LoadPhases* phases) {
    std::ifstream in(path);
    if (!in) throw Error("cannot open model file `" + path + "`");
    std::ostringstream buf;
    buf << in.rdbuf();
    return build_network_from_source(buf.str(), path, phases);
}

} // namespace slimsim::eda
