#include "eda/compiled.hpp"

#include <mutex>
#include <set>
#include <sstream>

#include "support/hash.hpp"

namespace slimsim::eda {

namespace {

using slim::InstProcess;
using slim::InstTransition;
using slim::TriggerClass;

// --- content hashing --------------------------------------------------------

std::uint64_t hash_string(std::uint64_t h, const std::string& s) {
    h = hash_mix(h, s.size());
    std::uint64_t word = 0;
    std::size_t n = 0;
    for (const unsigned char c : s) {
        word = (word << 8) | c;
        if (++n == 8) {
            h = hash_mix(h, word);
            word = 0;
            n = 0;
        }
    }
    if (n != 0) h = hash_mix(h, word);
    return h;
}

std::uint64_t hash_value(std::uint64_t h, const Value& v) {
    if (v.is_bool()) return hash_mix(hash_mix(h, 1), v.as_bool() ? 1 : 0);
    if (v.is_int()) {
        return hash_mix(hash_mix(h, 2), static_cast<std::uint64_t>(v.as_int()));
    }
    return hash_mix(hash_mix(h, 3), double_bits(v.as_real()));
}

std::uint64_t hash_type(std::uint64_t h, const Type& t) {
    h = hash_mix(h, static_cast<std::uint64_t>(t.kind));
    h = hash_mix(h, t.lo ? static_cast<std::uint64_t>(*t.lo) : 0x5EED);
    h = hash_mix(h, t.hi ? static_cast<std::uint64_t>(*t.hi) : 0x5EED);
    h = hash_mix(h, (t.lo.has_value() ? 1u : 0u) | (t.hi.has_value() ? 2u : 0u));
    return h;
}

/// Structural hash of an expression under its binding table: the program's
/// hash-consing key hash (compilation is cached, so this is a table lookup
/// after the first time). Null expressions hash to a sentinel.
std::uint64_t hash_expr(std::uint64_t h, const expr::ExprPtr& e,
                        std::span<const VarId> bindings) {
    if (e == nullptr) return hash_mix(h, 0x7256);
    return hash_mix(h, expr::compile(*e, bindings)->key_hash());
}

} // namespace

std::uint64_t model_content_hash(const InstanceModel& m) {
    std::uint64_t h = 0x51AD51AD51AD51ADULL;

    h = hash_mix(h, m.vars.size());
    for (const auto& v : m.vars) {
        h = hash_string(h, v.full_name);
        h = hash_type(h, v.type);
        h = hash_value(h, v.init);
        h = hash_mix(h, static_cast<std::uint64_t>(v.owner));
    }

    h = hash_mix(h, m.processes.size());
    for (const auto& p : m.processes) {
        h = hash_string(h, p.name);
        h = hash_mix(h, static_cast<std::uint64_t>(p.instance));
        h = hash_mix(h, p.is_error ? 1 : 0);
        h = hash_mix(h, static_cast<std::uint64_t>(p.initial_location));
        h = hash_mix(h, p.timer);
        const std::span<const VarId> bindings = *p.bindings;
        h = hash_mix(h, bindings.size());
        for (const VarId id : bindings) h = hash_mix(h, id);
        for (const ProcessId peer : p.propagation_peers) {
            h = hash_mix(h, static_cast<std::uint64_t>(peer));
        }
        h = hash_mix(h, p.locations.size());
        for (const auto& loc : p.locations) {
            h = hash_string(h, loc.name);
            h = hash_expr(h, loc.invariant, bindings);
            h = hash_mix(h, loc.rates.size());
            for (const auto& [var, slope] : loc.rates) {
                h = hash_mix(hash_mix(h, var), double_bits(slope));
            }
        }
        h = hash_mix(h, p.transitions.size());
        for (const auto& t : p.transitions) {
            h = hash_mix(h, static_cast<std::uint64_t>(t.src));
            h = hash_mix(h, static_cast<std::uint64_t>(t.dst));
            h = hash_mix(h, static_cast<std::uint64_t>(t.action));
            h = hash_mix(h, static_cast<std::uint64_t>(t.channel));
            h = hash_mix(h, static_cast<std::uint64_t>(t.role));
            h = hash_mix(h, static_cast<std::uint64_t>(t.trigger));
            h = hash_mix(h, double_bits(t.rate));
            h = hash_expr(h, t.guard, bindings);
            h = hash_mix(h, t.effects.size());
            for (const auto& a : t.effects) {
                h = hash_mix(h, bindings[a.target]);
                h = hash_expr(h, a.value, bindings);
            }
            h = hash_string(h, t.label);
        }
    }

    h = hash_mix(h, m.actions.size());
    for (const auto& a : m.actions) {
        h = hash_string(h, a.name);
        for (const ProcessId p : a.participants) {
            h = hash_mix(h, static_cast<std::uint64_t>(p));
        }
    }
    h = hash_mix(h, m.channels.size());
    for (const auto& c : m.channels) h = hash_string(h, c.name);

    h = hash_mix(h, m.instances.size());
    for (const auto& inst : m.instances) {
        h = hash_string(h, inst.path);
        h = hash_mix(h, static_cast<std::uint64_t>(inst.parent));
        h = hash_mix(h, static_cast<std::uint64_t>(inst.process));
        h = hash_mix(h, static_cast<std::uint64_t>(inst.error_process));
        h = hash_mix(h, inst.parent_modes.size());
        for (const int mode : inst.parent_modes) {
            h = hash_mix(h, static_cast<std::uint64_t>(mode));
        }
    }

    h = hash_mix(h, m.flows.size());
    for (const auto& f : m.flows) {
        h = hash_mix(h, f.target);
        h = hash_expr(h, f.value, *f.bindings);
        h = hash_mix(h, static_cast<std::uint64_t>(f.owner));
        h = hash_mix(h, static_cast<std::uint64_t>(f.gate_process));
        h = hash_mix(h, f.gate_locations.size());
        for (const int loc : f.gate_locations) {
            h = hash_mix(h, static_cast<std::uint64_t>(loc));
        }
    }

    h = hash_mix(h, m.injections.size());
    for (const auto& inj : m.injections) {
        h = hash_mix(h, static_cast<std::uint64_t>(inj.process));
        h = hash_mix(h, static_cast<std::uint64_t>(inj.state));
        h = hash_mix(h, inj.target);
        h = hash_value(h, inj.value);
        h = hash_value(h, inj.restore);
    }
    return h;
}

// --- CompiledModel ----------------------------------------------------------

std::string Candidate::describe(const InstanceModel& m) const {
    std::ostringstream os;
    switch (kind) {
    case Kind::Tau: {
        const auto& p = m.processes[static_cast<std::size_t>(process)];
        const auto& t = p.transitions[static_cast<std::size_t>(transition)];
        os << "tau " << p.name << ": " << p.locations[t.src].name << " -> "
           << p.locations[t.dst].name;
        break;
    }
    case Kind::Sync:
        os << "sync " << m.actions[static_cast<std::size_t>(action)].name;
        break;
    case Kind::BroadcastSend: {
        const auto& p = m.processes[static_cast<std::size_t>(process)];
        const auto& t = p.transitions[static_cast<std::size_t>(transition)];
        os << "propagate " << t.label << " from " << p.name;
        break;
    }
    }
    os << " @ " << enabled.to_string();
    return os.str();
}

CompiledModel::CompiledModel(std::shared_ptr<const InstanceModel> model)
    : model_(std::move(model)) {
    std::set<const expr::Program*> unique;
    const auto lower = [&](const expr::ExprPtr& e,
                           std::span<const VarId> bindings) -> expr::ProgramPtr {
        if (e == nullptr) return nullptr;
        expr::ProgramPtr p = expr::compile(*e, bindings);
        ++stats_.programs;
        if (unique.insert(p.get()).second) {
            ++stats_.unique_programs;
            stats_.nodes += p->node_count();
            stats_.bytecode_bytes += p->bytecode_bytes();
        }
        return p;
    };

    processes_.reserve(model_->processes.size());
    for (const InstProcess& proc : model_->processes) {
        CompiledProcess cp;
        const std::span<const VarId> bindings = *proc.bindings;

        cp.transitions.reserve(proc.transitions.size());
        for (const InstTransition& tr : proc.transitions) {
            CompiledTransition ct;
            ct.guard = lower(tr.guard, bindings);
            ct.effects.reserve(tr.effects.size());
            for (const slim::InstAssign& a : tr.effects) {
                ct.effects.emplace_back(bindings[a.target], lower(a.value, bindings));
            }
            cp.transitions.push_back(std::move(ct));
        }

        cp.locations.reserve(proc.locations.size());
        for (const slim::InstLocation& loc : proc.locations) {
            CompiledLocation cl;
            cl.invariant = lower(loc.invariant, bindings);
            cp.locations.push_back(std::move(cl));
        }
        for (std::size_t t = 0; t < proc.transitions.size(); ++t) {
            cp.locations[static_cast<std::size_t>(proc.transitions[t].src)]
                .outgoing.push_back(static_cast<int>(t));
        }
        for (CompiledLocation& cl : cp.locations) {
            for (const int t : cl.outgoing) {
                const InstTransition& tr =
                    proc.transitions[static_cast<std::size_t>(t)];
                cl.markov_total += tr.rate;
                if (!tr.markovian() && tr.trigger == TriggerClass::Normal &&
                    !tr.receive_only() && tr.action == slim::kTau) {
                    cl.tau_candidates.push_back(t);
                }
            }
        }
        processes_.push_back(std::move(cp));
    }

    flows_.reserve(model_->flows.size());
    for (const slim::InstFlow& f : model_->flows) {
        flows_.push_back(lower(f.value, *f.bindings));
    }

    content_hash_ = model_content_hash(*model_);
}

// --- process-wide compilation cache -----------------------------------------

namespace {

struct ModelCache {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::weak_ptr<const CompiledModel>> map;
};

ModelCache& model_cache() {
    static ModelCache cache;
    return cache;
}

} // namespace

CompiledModelPtr compile_model(std::shared_ptr<const InstanceModel> model) {
    SLIMSIM_ASSERT(model != nullptr);
    const std::uint64_t key = model_content_hash(*model);
    ModelCache& cache = model_cache();
    std::lock_guard<std::mutex> lock(cache.mu);
    if (auto it = cache.map.find(key); it != cache.map.end()) {
        if (CompiledModelPtr live = it->second.lock()) return live;
    }
    auto compiled = std::make_shared<const CompiledModel>(std::move(model));
    cache.map[key] = compiled;
    return compiled;
}

// --- discrete-state interning -----------------------------------------------

const InternedConfig& StateInterner::intern(const NetworkState& s,
                                            const CompiledModel& cm) {
    // Consecutive intern() calls within one simulator step (and usually
    // across steps) see the same discrete configuration; one comparison
    // against the previous hit skips the hash + index probe entirely.
    if (last_ != kNoLast) {
        Entry& e = entry(last_);
        if (e.locations == s.locations && e.active == s.active) return e.config;
    }

    std::uint64_t h = 0x57A7E57A7E57A7EULL;
    for (const int l : s.locations) h = hash_mix(h, static_cast<std::uint64_t>(l));
    for (const char a : s.active) h = hash_mix(h, static_cast<std::uint64_t>(a));

    const auto [begin, end] = index_.equal_range(h);
    for (auto it = begin; it != end; ++it) {
        Entry& e = entry(it->second);
        if (e.locations == s.locations && e.active == s.active) {
            last_ = it->second;
            return e.config;
        }
    }

    if (entries_ % kChunk == 0) {
        chunks_.push_back(std::make_unique<Entry[]>(kChunk));
    }
    Entry& e = entry(entries_);
    e.locations = s.locations;
    e.active = s.active;

    const InstanceModel& m = cm.model();
    e.config.rates.assign(m.vars.size(), 0.0);
    e.config.markov.clear();
    e.config.taus.clear();
    e.config.invariants.clear();
    for (std::size_t p = 0; p < m.processes.size(); ++p) {
        const InstProcess& proc = m.processes[p];
        if (!s.instance_active(static_cast<std::size_t>(proc.instance))) continue;
        const auto loc = static_cast<std::size_t>(s.locations[p]);
        for (const auto& [var, slope] : proc.locations[loc].rates) {
            e.config.rates[var] = slope;
        }
        const CompiledProcess& cp = cm.process(static_cast<ProcessId>(p));
        const CompiledLocation& cl = cp.locations[loc];
        if (cl.markov_total > 0.0) {
            e.config.markov.push_back({static_cast<ProcessId>(p), cl.markov_total});
        }
        if (cl.invariant != nullptr) {
            e.config.invariants.push_back(cl.invariant.get());
        }
        for (const int t : cl.tau_candidates) {
            const auto& tr = proc.transitions[static_cast<std::size_t>(t)];
            e.config.taus.push_back(
                {static_cast<ProcessId>(p), t,
                 tr.channel == slim::kNoChannel ? Candidate::Kind::Tau
                                                : Candidate::Kind::BroadcastSend,
                 cp.transitions[static_cast<std::size_t>(t)].guard.get()});
        }
    }

    index_.emplace(h, static_cast<std::uint32_t>(entries_));
    last_ = static_cast<std::uint32_t>(entries_);
    ++entries_;
    return e.config;
}

void StateInterner::clear() {
    chunks_.clear();
    entries_ = 0;
    index_.clear();
    last_ = kNoLast;
}

} // namespace slimsim::eda
