// Network state: the dynamic part of a Network of Event-Data Automata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/value.hpp"

namespace slimsim::eda {

/// Complete simulation state of a network: one location per process, the
/// global valuation, per-instance activation flags, and the global time.
struct NetworkState {
    std::vector<int> locations;  // per process
    std::vector<Value> values;   // per global variable
    std::vector<char> active;    // per instance (char to avoid vector<bool>)
    double time = 0.0;

    [[nodiscard]] bool instance_active(std::size_t inst) const {
        return active[inst] != 0;
    }
};

/// Discrete projection of a state (locations + non-timed variable values +
/// activation). Used as the hash key by the explicit state-space builder;
/// only valid for untimed models, where timed variables never influence
/// behaviour.
struct DiscreteKey {
    std::vector<int> locations;
    std::vector<Value> values; // only the non-timed variables, in var order
    std::vector<char> active;

    friend bool operator==(const DiscreteKey&, const DiscreteKey&) = default;

    [[nodiscard]] std::size_t hash() const;
};

struct DiscreteKeyHash {
    std::size_t operator()(const DiscreteKey& k) const { return k.hash(); }
};

} // namespace slimsim::eda
