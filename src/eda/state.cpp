#include "eda/state.hpp"

namespace slimsim::eda {

namespace {
void hash_combine(std::size_t& seed, std::size_t v) {
    seed ^= v + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
}
} // namespace

std::size_t DiscreteKey::hash() const {
    std::size_t seed = 0xC0FFEE;
    for (const int l : locations) hash_combine(seed, static_cast<std::size_t>(l));
    for (const Value& v : values) hash_combine(seed, v.hash());
    for (const char a : active) hash_combine(seed, static_cast<std::size_t>(a));
    return seed;
}

} // namespace slimsim::eda
