#include "eda/state.hpp"

#include "support/hash.hpp"

namespace slimsim::eda {

std::size_t DiscreteKey::hash() const {
    // Murmur3-finalized mixing: the previous boost-style xor-shift combine
    // left low-entropy inputs (small ints, bools) clustered in the low bits,
    // degenerating the interning tables' bucket spread on models whose
    // discrete variables differ only in low bits.
    std::uint64_t seed = 0xC0FFEE;
    for (const int l : locations) seed = hash_mix(seed, static_cast<std::uint64_t>(l));
    for (const Value& v : values) seed = hash_mix(seed, static_cast<std::uint64_t>(v.hash()));
    for (const char a : active) seed = hash_mix(seed, static_cast<std::uint64_t>(a));
    return static_cast<std::size_t>(hash_mix(seed, locations.size()));
}

} // namespace slimsim::eda
