// Compiled models: the compile-once half of the compile-once / simulate-many
// split (the public API is slimsim::compile() in api/analysis.hpp).
//
// A CompiledModel lowers every expression of an InstanceModel — guards,
// invariants, effects, flows — into hash-consed expr::Programs with binding
// slots resolved to global VarIds, and precomputes the per-location facts the
// simulator needs every step (outgoing transitions, tau candidate lists,
// total Markovian exit rates). It is immutable, thread-safe, keyed by a
// deterministic content hash, and shared: compile_model() interns models in a
// process-wide cache, and any number of Networks / analysis runs can use one
// instance concurrently.
//
// The simulate-many half lives in SimScratch: per-worker reusable buffers
// (expression registers, candidate/write/ready lists, the interned
// discrete-state table and the per-path state), so the hot loop runs
// allocation-free once warmed up.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "eda/state.hpp"
#include "expr/compile.hpp"
#include "slim/instantiate.hpp"
#include "support/intervals.hpp"

namespace slimsim::eda {

using slim::ActionId;
using slim::ChannelId;
using slim::InstanceModel;
using slim::ProcessId;

/// One schedulable discrete alternative at the current state, together with
/// the exact set of delays after which it is enabled (clamped to the
/// invariant horizon). Markovian transitions are *not* candidates; the
/// simulator races sampled exponential delays against the strategy's choice.
struct Candidate {
    enum class Kind : std::uint8_t {
        Tau,           // internal transition of one process
        Sync,          // multi-party synchronization on an event action
        BroadcastSend, // error propagation send (drags ready receivers along)
    };
    Kind kind = Kind::Tau;
    ProcessId process = -1; // Tau / BroadcastSend
    int transition = -1;    // Tau / BroadcastSend
    ActionId action = -1;   // Sync
    IntervalSet enabled;    // delays at which the candidate can fire

    [[nodiscard]] std::string describe(const InstanceModel& m) const;
};

/// Total Markovian exit rate of one process at the current state.
struct MarkovianRate {
    ProcessId process = -1;
    double total_rate = 0.0;
};

/// A transition with its guard and effects compiled; effect targets are
/// resolved to global variable ids.
struct CompiledTransition {
    expr::ProgramPtr guard; // null = always enabled
    std::vector<std::pair<VarId, expr::ProgramPtr>> effects;
};

/// Per-location precomputation: facts the interpreter re-derived from the
/// transition list on every step.
struct CompiledLocation {
    expr::ProgramPtr invariant; // null = true
    std::vector<int> outgoing;  // transitions leaving this location, in order
    /// Outgoing transitions that are strategy candidates (non-Markovian,
    /// Normal trigger, not receive-only, tau action), in outgoing order.
    std::vector<int> tau_candidates;
    /// Sum of outgoing Markovian rates (the process's exit rate here).
    double markov_total = 0.0;
};

struct CompiledProcess {
    std::vector<CompiledLocation> locations;
    std::vector<CompiledTransition> transitions;
};

/// Compile-time statistics (deterministic; surfaced by --compile-stats and
/// the run report's compiled_model section).
struct CompileStats {
    std::size_t programs = 0;        // expressions lowered (before dedup)
    std::size_t unique_programs = 0; // distinct hash-consed programs
    std::size_t nodes = 0;           // expression nodes over unique programs
    std::size_t bytecode_bytes = 0;  // code + node tables over unique programs
};

/// An InstanceModel with every expression compiled and the per-location
/// simulator facts precomputed. Immutable and thread-safe; create via
/// compile_model() (or slimsim::compile()), share across runs freely.
class CompiledModel {
public:
    explicit CompiledModel(std::shared_ptr<const InstanceModel> model);

    [[nodiscard]] const InstanceModel& model() const { return *model_; }
    [[nodiscard]] const std::shared_ptr<const InstanceModel>& model_ptr() const {
        return model_;
    }

    [[nodiscard]] const CompiledProcess& process(ProcessId p) const {
        return processes_[static_cast<std::size_t>(p)];
    }
    /// Program of InstanceModel::flows[i] (same indexing; gating metadata
    /// stays on the InstFlow).
    [[nodiscard]] const expr::ProgramPtr& flow_program(std::size_t i) const {
        return flows_[i];
    }

    [[nodiscard]] const CompileStats& stats() const { return stats_; }

    /// Deterministic hash of the model's full behavioral content (variables,
    /// processes, expression structure, flows, injections, names). Stable
    /// across processes and platforms; used as the compile_model() cache key
    /// and as the checkpoint/resume model identity.
    [[nodiscard]] std::uint64_t content_hash() const { return content_hash_; }

private:
    std::shared_ptr<const InstanceModel> model_;
    std::vector<CompiledProcess> processes_;
    std::vector<expr::ProgramPtr> flows_;
    CompileStats stats_;
    std::uint64_t content_hash_ = 0;
};

using CompiledModelPtr = std::shared_ptr<const CompiledModel>;

/// Compiles `model`, or returns the process-wide cached compilation of a
/// content-identical model. Thread-safe.
[[nodiscard]] CompiledModelPtr compile_model(std::shared_ptr<const InstanceModel> model);

/// Deterministic content hash of an instance model (what compile_model keys
/// its cache on), without compiling.
[[nodiscard]] std::uint64_t model_content_hash(const InstanceModel& model);

/// Facts that are a pure function of a state's discrete projection
/// (locations + activation): the per-variable derivative vector and the
/// per-process Markovian exit rates. Interned per discrete configuration so
/// revisited configurations cost one hash lookup instead of a model sweep.
struct InternedConfig {
    std::vector<double> rates;         // derivative per global var
    std::vector<MarkovianRate> markov; // processes with positive exit rate
    /// One strategy candidate (tau / broadcast send) of an active process,
    /// with its compiled guard; candidates_impl's per-step filter applied
    /// once per discrete configuration, in process-then-outgoing order.
    struct TauCandidate {
        ProcessId process = -1;
        int transition = -1;
        Candidate::Kind kind = Candidate::Kind::Tau;
        const expr::Program* guard = nullptr; // null = always enabled
    };
    std::vector<TauCandidate> taus;
    /// Location invariants of the active processes, in process order
    /// (trivially-true null invariants omitted).
    std::vector<const expr::Program*> invariants;
};

/// Per-worker discrete-state interning table (murmur3 over the discrete
/// projection). Entries live in a chunk-stable pool, so references returned
/// by intern() stay valid while the interner exists. Not thread-safe: one
/// interner per worker.
class StateInterner {
public:
    /// Config of s's discrete projection, computing and interning it on
    /// first sight.
    [[nodiscard]] const InternedConfig& intern(const NetworkState& s,
                                               const CompiledModel& cm);

    [[nodiscard]] std::size_t size() const { return entries_; }
    void clear();

private:
    struct Entry {
        std::vector<int> locations;
        std::vector<char> active;
        InternedConfig config;
    };

    // Chunked pool: fixed-size chunks that never move once allocated, so
    // interned configs stay valid across growth of the index.
    static constexpr std::size_t kChunk = 64;
    [[nodiscard]] Entry& entry(std::size_t i) {
        return chunks_[i / kChunk][i % kChunk];
    }

    static constexpr std::uint32_t kNoLast = 0xffffffffu;

    std::vector<std::unique_ptr<Entry[]>> chunks_;
    std::size_t entries_ = 0;
    std::unordered_multimap<std::uint64_t, std::uint32_t> index_;
    std::uint32_t last_ = kNoLast; // last hit: short-circuits repeat lookups
};

/// Reusable per-worker simulation buffers. Bound to one CompiledModel at a
/// time; rebinding (bind()) clears model-derived caches. Owned by path
/// generators and the legacy Network entry points' thread-local scratch.
struct SimScratch {
    expr::EvalScratch eval;
    StateInterner interner;
    std::vector<Candidate> candidates;           // candidates() output buffer
    std::vector<std::pair<VarId, Value>> writes; // apply_firing buffer
    std::vector<int> ready;                      // sync/broadcast sub-choices
    std::vector<std::pair<ProcessId, int>> firing;
    /// Successful initial state, cached lazily (models whose initial flows
    /// throw keep per-path throw semantics).
    std::optional<NetworkState> initial;
    /// Per-path state reused across paths (buffers keep their capacity).
    NetworkState path_state;

    void bind(const CompiledModel& cm) {
        if (bound_ != &cm) {
            interner.clear();
            initial.reset();
            bound_ = &cm;
        }
    }

private:
    const CompiledModel* bound_ = nullptr;
};

} // namespace slimsim::eda
