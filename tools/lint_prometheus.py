#!/usr/bin/env python3
"""Lint a Prometheus text exposition (format 0.0.4).

Shared by CI for every exposition the tool emits: the --metrics-out file,
and live /metrics scrapes from --serve-metrics (docs/observability.md).

Checks:
  * every sample line parses and appears after its family's # TYPE;
  * # TYPE kinds are counter / gauge / histogram, no duplicate families;
  * # HELP, when present, directly precedes the # TYPE of the same family;
  * counter family names end in _total, and only counters use _total;
  * histogram samples only use the _bucket / _sum / _count suffixes,
    _bucket carries an `le` label, every histogram emits an le="+Inf"
    bucket and its _count equals the +Inf cumulative count;
  * label values use only the \\ " and \\n escapes.

Usage: lint_prometheus.py FILE [--require FAMILY]...
A FILE of `-` reads stdin. Exits non-zero with a message on the first
violation.
"""

import argparse
import re
import sys

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'      # metric name
    r'(\{.*\})?'                          # optional label set
    r' (-?[0-9][0-9eE.+-]*|[+-]Inf|NaN)$' # value
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')
HISTOGRAM_SUFFIXES = ('_bucket', '_sum', '_count')


def base_family(name, typed):
    """Resolves a sample name to its family: histogram samples drop the
    _bucket/_sum/_count suffix."""
    if name in typed:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            return name[: -len(suffix)]
    return None


def lint(lines, required):
    typed = {}           # family -> kind
    pending_help = None  # family named by the directly preceding # HELP
    inf_buckets = {}     # (family, labels sans le) -> +Inf cumulative count
    counts = {}          # (family, labels) -> _count value

    for i, line in enumerate(lines, 1):
        def fail(msg):
            raise SystemExit(f'{i}: {msg}: {line!r}')

        if line.startswith('# HELP '):
            parts = line.split(maxsplit=3)
            if len(parts) < 3:
                fail('malformed # HELP')
            pending_help = parts[2]
            continue
        if line.startswith('# TYPE '):
            parts = line.split()
            if len(parts) != 4:
                fail('malformed # TYPE')
            name, kind = parts[2], parts[3]
            if name in typed:
                fail(f'duplicate family {name}')
            if kind not in ('counter', 'gauge', 'histogram'):
                fail(f'unknown type {kind}')
            if kind == 'counter' and not name.endswith('_total'):
                fail(f'counter {name} must end in _total')
            if kind != 'counter' and name.endswith('_total'):
                fail(f'{name} ends in _total but is typed {kind}, not counter')
            if pending_help is not None and pending_help != name:
                fail(f'# HELP {pending_help} does not precede its # TYPE')
            typed[name] = kind
            pending_help = None
            continue
        pending_help = None
        if not line or line.startswith('#'):
            continue  # other comments (e.g. the runtime-metrics marker)

        m = SAMPLE_RE.match(line)
        if not m:
            fail('unparseable sample')
        name, labels, value = m.group(1), m.group(2) or '', m.group(3)
        family = base_family(name, typed)
        if family is None:
            fail(f'sample {name} before any matching # TYPE')
        kind = typed[family]
        if kind == 'histogram':
            if name == family:
                fail('histogram samples need a _bucket/_sum/_count suffix')
            if name.endswith('_bucket'):
                label_map = dict(LABEL_RE.findall(labels.strip('{}')))
                if 'le' not in label_map:
                    fail('histogram _bucket sample without an le label')
                child = tuple(sorted((k, v) for k, v in label_map.items()
                                     if k != 'le'))
                if label_map['le'] == '+Inf':
                    inf_buckets[(family, child)] = int(value)
            if name.endswith('_count'):
                child = tuple(sorted(LABEL_RE.findall(labels.strip('{}'))))
                counts[(family, child)] = int(value)
        elif name != family:
            fail(f'sample name {name} does not match its family {family}')
        if labels:
            body = labels[1:-1]
            if LABEL_RE.sub('', body).strip(', ') != '':
                fail('malformed or badly escaped label set')

    for family, kind in typed.items():
        if kind != 'histogram':
            continue
        for (fam, child), n in counts.items():
            if fam != family:
                continue
            if (fam, child) not in inf_buckets:
                raise SystemExit(f'histogram {fam}{dict(child)} has no '
                                 f'le="+Inf" bucket')
            if inf_buckets[(fam, child)] != n:
                raise SystemExit(f'histogram {fam}{dict(child)}: _count {n} != '
                                 f'+Inf bucket {inf_buckets[(fam, child)]}')

    missing = [f for f in required if f not in typed]
    if missing:
        raise SystemExit(f'required families missing: {", ".join(missing)}')
    return len(typed)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('file', help='exposition file, or - for stdin')
    parser.add_argument('--require', action='append', default=[],
                        metavar='FAMILY',
                        help='fail unless this family is present (repeatable)')
    opts = parser.parse_args()
    text = sys.stdin.read() if opts.file == '-' else open(opts.file).read()
    lines = text.splitlines()
    if not lines:
        raise SystemExit('empty exposition')
    families = lint(lines, opts.require)
    print(f'ok: {families} families, {len(lines)} lines')


if __name__ == '__main__':
    main()
