#!/usr/bin/env python3
"""Lint a slimsim run journal (JSONL; the CLI's --log file or a /journal
scrape, docs/observability.md).

Checks:
  * every line parses as a JSON object;
  * required keys seq, t, level, event, msg are present;
  * seq is dense and increasing from the first line's seq (a --log file
    starts at 0; a /journal?tail=N scrape starts mid-stream);
  * level is one of info / debug / trace;
  * t is a non-negative number;
  * path, when present, is a non-negative integer.

Usage: lint_journal.py FILE [--require EVENT]... [--require-count EVENT=N]...
       [--from-zero]
A FILE of `-` reads stdin. --require fails unless an event of that name
appears (repeatable); --require-count EVENT=N fails unless the event appears
exactly N times (repeatable; CI uses it to pin injected fault schedules);
--from-zero additionally requires seq to start at 0.
Exits non-zero with a message on the first violation.
"""

import argparse
import collections
import json
import sys

LEVELS = ('info', 'debug', 'trace')
REQUIRED_KEYS = ('seq', 't', 'level', 'event', 'msg')


def lint(lines, required, required_counts, from_zero):
    events = collections.Counter()
    expected_seq = None
    for i, line in enumerate(lines, 1):
        def fail(msg):
            raise SystemExit(f'{i}: {msg}: {line!r}')

        try:
            entry = json.loads(line)
        except ValueError as e:
            fail(f'unparseable JSON ({e})')
        if not isinstance(entry, dict):
            fail('line is not a JSON object')
        for key in REQUIRED_KEYS:
            if key not in entry:
                fail(f'missing required key {key!r}')
        seq = entry['seq']
        if not isinstance(seq, int) or seq < 0:
            fail(f'seq must be a non-negative integer, got {seq!r}')
        if expected_seq is None:
            if from_zero and seq != 0:
                fail(f'seq must start at 0, got {seq}')
            expected_seq = seq
        if seq != expected_seq:
            fail(f'seq not dense: expected {expected_seq}, got {seq}')
        expected_seq += 1
        if entry['level'] not in LEVELS:
            fail(f'unknown level {entry["level"]!r}')
        t = entry['t']
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            fail(f't must be a non-negative number, got {t!r}')
        if not isinstance(entry['event'], str) or not entry['event']:
            fail('event must be a non-empty string')
        if not isinstance(entry['msg'], str):
            fail('msg must be a string')
        if 'path' in entry:
            path = entry['path']
            if not isinstance(path, int) or isinstance(path, bool) or path < 0:
                fail(f'path must be a non-negative integer, got {path!r}')
        events[entry['event']] += 1

    missing = [e for e in required if e not in events]
    if missing:
        raise SystemExit(f'required events missing: {", ".join(missing)}')
    wrong = [f'{e}: expected {n}, got {events[e]}'
             for e, n in required_counts if events[e] != n]
    if wrong:
        raise SystemExit('event count mismatch: ' + '; '.join(wrong))
    return len(events)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument('file', help='journal JSONL file, or - for stdin')
    parser.add_argument('--require', action='append', default=[],
                        metavar='EVENT',
                        help='fail unless this event appears (repeatable)')
    parser.add_argument('--require-count', action='append', default=[],
                        metavar='EVENT=N',
                        help='fail unless this event appears exactly N times '
                             '(repeatable)')
    parser.add_argument('--from-zero', action='store_true',
                        help='require seq to start at 0 (full --log files)')
    opts = parser.parse_args()
    required_counts = []
    for spec in opts.require_count:
        event, sep, n = spec.partition('=')
        if not sep or not event or not n.isdigit():
            raise SystemExit(f'--require-count: expected EVENT=N, got {spec!r}')
        required_counts.append((event, int(n)))
    text = sys.stdin.read() if opts.file == '-' else open(opts.file).read()
    lines = [l for l in text.splitlines() if l]
    if not lines:
        raise SystemExit('empty journal')
    events = lint(lines, opts.require, required_counts, opts.from_zero)
    print(f'ok: {len(lines)} entries, {events} distinct events')


if __name__ == '__main__':
    main()
