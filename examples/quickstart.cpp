// Quickstart: load the paper's GPS example, estimate a timed reachability
// probability, and print one simulated path.
//
//   $ ./quickstart
//
// Demonstrates the core API: build a network from SLIM source, define a
// property P( <> [0,u] goal ), pick a strategy and a stopping criterion,
// and run the Monte Carlo estimator.
#include <cstdio>

#include "models/gps.hpp"
#include "sim/runner.hpp"

int main() {
    using namespace slimsim;
    try {
        // 1. Parse + instantiate the SLIM model into an executable network.
        const eda::Network net = eda::build_network_from_source(models::gps_source());
        std::printf("GPS model: %zu processes, %zu variables\n",
                    net.model().processes.size(), net.model().vars.size());

        // 2. The property: does the GPS obtain a fix within 30 minutes?
        const sim::TimedReachability prop =
            sim::make_reachability(net.model(), "gps.measurement", 30.0 * 60.0);

        // 3. Trace one path under the Progressive strategy.
        auto strategy = sim::make_strategy(sim::StrategyKind::Progressive);
        const sim::PathGenerator gen(net, prop, *strategy);
        Rng rng(2024);
        sim::Trace trace;
        const sim::PathOutcome path = gen.run_traced(rng, trace);
        std::printf("\nexample path (%s after %zu steps):\n%s\n",
                    sim::to_string(path.terminal).c_str(), path.steps,
                    trace.to_string().c_str());

        // 4. Estimate the probability with the Chernoff-Hoeffding bound:
        //    confidence 95% (delta = 0.05), error bound 0.01.
        const stat::ChernoffHoeffding criterion(0.05, 0.01);
        std::printf("running %zu paths...\n", *criterion.fixed_sample_count());
        const sim::EstimationResult result =
            sim::estimate(net, prop, sim::StrategyKind::Progressive, criterion, 2024);
        std::printf("P( <> [0, 30 min] gps.measurement ) ~= %.4f\n", result.estimate);
        std::printf("%s\n", result.to_string().c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
