// Launcher reliability study (the paper's Sec. V case study, condensed).
//
//   $ ./launcher_study [--recoverable] [--eps E] [--mission MINUTES]
//
// Estimates the probability of losing thruster control within the mission
// time, under every automated strategy, and prints a comparison — the
// experiment behind Fig. 5.
#include <cstdio>
#include <cstring>
#include <string>

#include "models/launcher.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        models::LauncherOptions opt;
        double eps = 0.02;
        double mission_minutes = 120.0;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--recoverable") == 0) {
                opt.recoverable_dpu = true;
            } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--mission") == 0 && i + 1 < argc) {
                mission_minutes = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }

        const eda::Network net =
            eda::build_network_from_source(models::launcher_source(opt));
        const double u = mission_minutes * 60.0;
        const sim::TimedReachability prop =
            sim::make_reachability(net.model(), models::launcher_goal(), u);
        const stat::ChernoffHoeffding criterion(0.1, eps);

        std::printf("launcher case study (%s DPU faults), mission %.0f min, "
                    "N = %zu paths per strategy\n",
                    opt.recoverable_dpu ? "recoverable" : "permanent", mission_minutes,
                    *criterion.fixed_sample_count());
        std::printf("%-12s  %-10s  %-10s  %-8s\n", "strategy", "P(failure)", "paths/s",
                    "time");
        for (const sim::StrategyKind kind : sim::automated_strategies()) {
            const sim::EstimationResult r =
                sim::estimate(net, prop, kind, criterion, 7);
            std::printf("%-12s  %-10.4f  %-10.0f  %.2fs\n", sim::to_string(kind).c_str(),
                        r.estimate, static_cast<double>(r.samples) / r.wall_seconds,
                        r.wall_seconds);
        }
        if (opt.recoverable_dpu) {
            std::puts("\nexpected ordering (paper Fig. 5 right): asap >= local >= "
                      "progressive >= maxtime");
        } else {
            std::puts("\nexpected (paper Fig. 5 left): all strategies coincide");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
