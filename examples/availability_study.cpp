// Advanced analyses on a repairable system: adaptive stopping, qualitative
// SPRT, and a nested probabilistic operator (the paper's Sec. VII wishlist).
//
//   $ ./availability_study
//
// Model: a component that fails at 1/h and is repaired at 4/h. Questions:
//  1. P( <> [0,8h] down )             — estimation, CH vs Chow-Robbins cost
//  2. is P( <> [0,8h] down ) >= 0.95? — SPRT hypothesis test
//  3. P( <> [0,8h] "risky" ) where risky := P>=0.5( <> [0,30min] down )
//     — a nested operator decided by memoized sub-simulations
#include <cstdio>

#include "sim/nested.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"

namespace {

constexpr const char* kModel = R"(
    root S.I;
    system S
    features down: out data port bool default false;
    end S;
    system implementation S.I end S.I;
    error model EM
    features ok: initial state; failed: error state;
    end EM;
    error model implementation EM.I
    events
      fail: error event occurrence poisson 1 per hour;
      fix: error event occurrence poisson 4 per hour;
    transitions
      ok -[fail]-> failed;
      failed -[fix]-> ok;
    end EM.I;
    fault injections
      component root uses error model EM.I;
      component root in state failed effect down := true;
    end fault injections;
)";

} // namespace

int main() {
    using namespace slimsim;
    try {
        const eda::Network net = eda::build_network_from_source(kModel);
        const double mission = 8.0 * 3600.0;
        const sim::PathFormula prop = sim::make_reachability(net.model(), "down", mission);

        std::puts("== 1. estimation: Chernoff-Hoeffding vs Chow-Robbins ==");
        for (const auto kind :
             {stat::CriterionKind::ChernoffHoeffding, stat::CriterionKind::ChowRobbins}) {
            const auto criterion = stat::make_criterion(kind, 0.05, 0.01);
            const auto res =
                sim::estimate(net, prop, sim::StrategyKind::Progressive, *criterion, 1);
            std::printf("  %-20s p^ = %.4f with %zu paths\n", criterion->name().c_str(),
                        res.estimate, res.samples);
        }

        std::puts("\n== 2. qualitative: is P(down within 8 h) >= 0.95? ==");
        sim::HypothesisOptions hopt;
        hopt.indifference = 0.02;
        const auto verdict =
            sim::test_hypothesis(net, prop, sim::StrategyKind::Progressive, 0.95, 2, hopt);
        std::printf("  %s\n", verdict.to_string().c_str());

        std::puts("\n== 3. nested: P( <> [0,8h] P>=0.5( <> [0,30min] down ) ) ==");
        sim::PathFormula inner =
            sim::make_reachability(net.model(), "down", 30.0 * 60.0);
        // From `ok`: P(down within 30 min) = 1 - e^{-0.5} ~ 0.39 < 0.5;
        // from `failed` it is 1. So "risky" marks exactly the down states,
        // and the nested query equals question 1.
        const sim::StateFormula risky =
            sim::StateFormula::probability_at_least(inner, 0.5, 0.05, 0.01);
        sim::NestedOptions nopt;
        nopt.eps = 0.01;
        const auto nested = sim::estimate_nested(net, risky, mission, 3, nopt);
        std::printf("  %s\n", nested.to_string().c_str());
        std::puts("  (inner truth is memoized per discrete state: 2 sub-simulations"
                  " answer thousands of queries)");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
