// Redundancy sizing study on the sensor/filter benchmark (Sec. IV).
//
//   $ ./redundancy_study [--max-r R] [--hours H]
//
// For each redundancy degree R, computes the exact failure probability via
// the CTMC flow and the Monte Carlo estimate, showing how redundancy buys
// reliability — and how the exact flow's state space explodes while the
// simulator's cost stays flat.
#include <cstdio>
#include <cstring>
#include <string>

#include "ctmc/flow.hpp"
#include "models/sensor_filter.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        int max_r = 4;
        double hours = 100.0;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--max-r") == 0 && i + 1 < argc) {
                max_r = std::stoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
                hours = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const double u = hours * 3600.0;
        const stat::ChernoffHoeffding criterion(0.05, 0.01);

        std::printf("sensor/filter redundancy study, horizon %.0f h\n", hours);
        std::printf("%-3s  %-12s  %-12s  %-10s  %-12s\n", "R", "P(fail) exact",
                    "P(fail) sim", "states", "sim paths");
        for (int r = 1; r <= max_r; ++r) {
            const eda::Network net =
                eda::build_network_from_source(models::sensor_filter_source(r));
            const sim::TimedReachability prop =
                sim::make_reachability(net.model(), models::sensor_filter_goal(), u);
            const ctmc::FlowResult exact = ctmc::run_ctmc_flow(net, *prop.goal, u);
            const sim::EstimationResult mc =
                sim::estimate(net, prop, sim::StrategyKind::Asap, criterion, 99);
            std::printf("%-3d  %-12.5f  %-12.5f  %-10zu  %-12zu\n", r, exact.probability,
                        mc.estimate, exact.build.states, mc.samples);
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
