// Safety analysis of the launcher: FMEA table and minimal cut sets
// (the COMPASS-style analyses of paper Sec. II-C, on top of the simulator).
//
//   $ ./safety_analysis [--mission MIN] [--order K]
#include <cstdio>
#include <cstring>
#include <string>

#include "models/launcher.hpp"
#include "safety/fault_tree.hpp"
#include "safety/fdir.hpp"
#include "safety/fmea.hpp"
#include "slim/parser.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        double mission_min = 30.0;
        int order = 2;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--mission") == 0 && i + 1 < argc) {
                mission_min = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--order") == 0 && i + 1 < argc) {
                order = std::stoi(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const eda::Network net =
            eda::build_network_from_source(models::launcher_source());
        const auto prop = sim::make_reachability(net.model(), models::launcher_goal(),
                                                 mission_min * 60.0);

        std::printf("== minimal cut sets (static, order <= %d) ==\n", order);
        const auto sets = safety::minimal_cut_sets(net, prop.goal, order);
        std::fputs(safety::format_cut_sets(sets).c_str(), stdout);
        std::printf("(%zu minimal cut sets)\n\n", sets.size());

        std::printf("== fault tree (basic-event probabilities over %.0f min) ==\n",
                    mission_min);
        const auto tree =
            safety::build_fault_tree(net, prop.goal, mission_min * 60.0, order);
        std::fputs(tree.to_string().c_str(), stdout);
        std::puts("");

        std::printf("== FMEA, failure condition within %.0f min ==\n", mission_min);
        safety::FmeaOptions opt;
        opt.eps = 0.03;
        const auto rows = safety::fmea(net, prop.goal, mission_min * 60.0, 2024, opt);
        std::fputs(safety::format_fmea(rows).c_str(), stdout);
        std::puts("");

        std::printf("== FDIR coverage (15 min window) ==\n");
        const auto alarm = sim::resolve_goal(
            net.model(), slim::parse_expression("not dpu1.command or not dpu2.command"));
        const auto nominal = sim::resolve_goal(
            net.model(), slim::parse_expression("dpu1.command and dpu2.command"));
        safety::FdirOptions fdir_opt;
        fdir_opt.eps = 0.05;
        const auto coverage =
            safety::fdir_coverage(net, alarm, nominal, 15.0 * 60.0, 7, fdir_opt);
        std::fputs(safety::format_fdir(coverage).c_str(), stdout);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
