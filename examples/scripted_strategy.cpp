// The Input strategy, scripted: drive the simulator step by step from code.
//
//   $ ./scripted_strategy
//
// The paper's Input strategy asks the *user* what to do at every step; the
// same mechanism accepts a programmatic callback, which makes it a scripted
// scheduler. Here we steer the GPS model to acquire its fix at exactly
// t = 42 s, and print each decision the callback makes.
#include <cstdio>

#include "models/gps.hpp"
#include "sim/path_generator.hpp"

int main() {
    using namespace slimsim;
    try {
        const eda::Network net = eda::build_network_from_source(models::gps_source());
        const sim::TimedReachability prop =
            sim::make_reachability(net.model(), "gps.measurement", 600.0);

        // The callback: whenever the acquisition transition is enabled at
        // t = 42 s, take it then; otherwise fall back to the earliest
        // possible instant (ASAP-like).
        auto strategy = sim::make_input_strategy(
            [&](const eda::Network& n, const eda::NetworkState& state,
                std::span<const eda::Candidate> cands,
                double horizon) -> std::optional<sim::ScheduledChoice> {
                std::printf("  [callback] t=%.3f, horizon=%.3f, %zu candidate(s)\n",
                            state.time, horizon, cands.size());
                const double target = 42.0 - state.time;
                for (std::size_t i = 0; i < cands.size(); ++i) {
                    std::printf("    [%zu] %s\n", i, cands[i].describe(n.model()).c_str());
                    if (target >= 0.0 && cands[i].enabled.contains(target)) {
                        return sim::ScheduledChoice{target, static_cast<int>(i)};
                    }
                }
                double best = horizon;
                int pick = -1;
                for (std::size_t i = 0; i < cands.size(); ++i) {
                    if (const auto e = cands[i].enabled.earliest(); e && *e <= best) {
                        best = *e;
                        pick = static_cast<int>(i);
                    }
                }
                if (pick < 0) return std::nullopt;
                return sim::ScheduledChoice{best, pick};
            });

        const sim::PathGenerator gen(net, prop, *strategy);
        Rng rng(1);
        sim::Trace trace;
        const sim::PathOutcome out = gen.run_traced(rng, trace);
        std::printf("\npath (%s):\n%s", sim::to_string(out.terminal).c_str(),
                    trace.to_string().c_str());
        std::printf("fix acquired at t=%.1f (scripted target: 42.0)\n", out.end_time);
        return out.satisfied ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
