// Stopping-criterion ("generator") comparison: Chernoff-Hoeffding vs Gauss
// vs Chow-Robbins (paper Sec. III-A lists the latter two as extensions).
//
//   $ ./bench_generators [--eps E] [--delta D]
//
// Sweeps models with different true probabilities; reports the sample count
// and estimate of each criterion. Chow-Robbins adapts: near-certain and
// near-impossible events need far fewer samples.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "sim/runner.hpp"

namespace {

/// A one-fault model whose failure probability at the bound is `p_target`.
std::string model_for(double rate_per_sec) {
    std::string src = R"(
        root S.I;
        system S
        features broken: out data port bool default false;
        end S;
        system implementation S.I end S.I;
        error model EM
        features ok: initial state; bad: error state;
        end EM;
        error model implementation EM.I
        events f: error event occurrence poisson )";
    src += std::to_string(rate_per_sec);
    src += R"( per sec;
        transitions ok -[f]-> bad;
        end EM.I;
        fault injections
          component root uses error model EM.I;
          component root in state bad effect broken := true;
        end fault injections;
    )";
    return src;
}

} // namespace

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        double eps = 0.01;
        double delta = 0.05;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
                delta = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        benchio::Report report("generators");
        report.param("eps", eps);
        report.param("delta", delta);
        std::printf("== stopping criteria at delta=%g eps=%g ==\n", delta, eps);
        std::printf("%-8s | %-22s | %-22s | %-22s\n", "true p", "chernoff-hoeffding",
                    "gauss", "chow-robbins");
        std::printf("%-8s | %-10s %-11s | %-10s %-11s | %-10s %-11s\n", "", "estimate",
                    "samples", "estimate", "samples", "estimate", "samples");
        for (const double p : {0.001, 0.05, 0.5, 0.95, 0.999}) {
            // Choose the rate so that P(fault within 1 s) == p.
            const double rate = -std::log(1.0 - p);
            const eda::Network net = eda::build_network_from_source(model_for(rate));
            const sim::TimedReachability prop =
                sim::make_reachability(net.model(), "broken", 1.0);
            std::printf("%-8.3f |", p);
            json::Value row = json::Value::object();
            row["true_p"] = p;
            for (const auto kind :
                 {stat::CriterionKind::ChernoffHoeffding, stat::CriterionKind::Gauss,
                  stat::CriterionKind::ChowRobbins}) {
                const auto criterion = stat::make_criterion(kind, delta, eps);
                const auto res = sim::estimate(net, prop, sim::StrategyKind::Progressive,
                                               *criterion, 11);
                std::printf(" %-10.4f %-11zu |", res.estimate, res.samples);
                json::Value cell = json::Value::object();
                cell["estimate"] = res.estimate;
                cell["samples"] = static_cast<std::uint64_t>(res.samples);
                row[res.criterion] = std::move(cell);
            }
            report.add_row(std::move(row));
            std::printf("\n");
        }
        std::puts("\nexpected: CH uses a fixed worst-case N; Gauss a smaller fixed N;"
                  " Chow-Robbins adapts (smallest near p=0 or 1, similar to Gauss at"
                  " p=0.5).");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
