// Rare-event simulation (paper Sec. VI): crude Monte Carlo vs importance
// splitting on an N-out-of-N failure event, with the exact CTMC value as
// ground truth.
//
//   $ ./bench_rare [--components N] [--rate R] [--factor K] [--roots B]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "ctmc/flow.hpp"
#include "rare/splitting.hpp"
#include "sim/runner.hpp"

namespace {

using namespace slimsim;

std::string model_src(int n, double rate) {
    std::string src = "root S.I;\n"
                      "system Leaf\nfeatures broken: out data port bool default false;\n"
                      "end Leaf;\nsystem implementation Leaf.I end Leaf.I;\n"
                      "system S\nfeatures all_broken: out data port bool default false;\n"
                      "end S;\nsystem implementation S.I\nsubcomponents\n";
    for (int i = 0; i < n; ++i) src += "  c" + std::to_string(i) + ": system Leaf.I;\n";
    src += "flows\n  all_broken := ";
    for (int i = 0; i < n; ++i) {
        if (i > 0) src += " and ";
        src += "c" + std::to_string(i) + ".broken";
    }
    src += ";\nend S.I;\n"
           "error model EM\nfeatures ok: initial state; bad: error state;\nend EM;\n"
           "error model implementation EM.I\nevents f: error event occurrence poisson " +
           std::to_string(rate) +
           " per sec;\ntransitions ok -[f]-> bad;\nend EM.I;\n"
           "fault injections\n";
    for (int i = 0; i < n; ++i) {
        src += "  component c" + std::to_string(i) + " uses error model EM.I;\n";
        src += "  component c" + std::to_string(i) + " in state bad effect broken := true;\n";
    }
    src += "end fault injections;\n";
    return src;
}

} // namespace

int main(int argc, char** argv) {
    try {
        int components = 3;
        double rate = 0.01;
        std::size_t factor = 16;
        std::size_t roots = 20000;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--components") == 0 && i + 1 < argc) {
                components = std::stoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
                rate = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--factor") == 0 && i + 1 < argc) {
                factor = std::stoul(argv[++i]);
            } else if (std::strcmp(argv[i], "--roots") == 0 && i + 1 < argc) {
                roots = std::stoul(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const eda::Network net =
            eda::build_network_from_source(model_src(components, rate));
        const auto prop = sim::make_reachability(net.model(), "all_broken", 1.0);
        const double exact = ctmc::run_ctmc_flow(net, *prop.goal, 1.0).probability;
        benchio::Report report("rare");
        report.param("components", components);
        report.param("rate", rate);
        report.param("factor", static_cast<std::uint64_t>(factor));
        report.param("roots", static_cast<std::uint64_t>(roots));
        report.root()["exact_p"] = exact;
        std::printf("== rare event: all %d components fail within 1 s ==\n", components);
        std::printf("exact (CTMC):        p = %.3e\n", exact);

        // Crude Monte Carlo with `roots` paths.
        {
            Rng rng(1);
            auto strat = sim::make_strategy(sim::StrategyKind::Asap);
            const sim::PathGenerator gen(net, prop, *strat);
            std::size_t hits = 0;
            for (std::size_t i = 0; i < roots; ++i) {
                if (gen.run(rng).satisfied) ++hits;
            }
            std::printf("crude MC (%zu paths): %zu hits -> p^ = %.3e\n", roots, hits,
                        static_cast<double>(hits) / static_cast<double>(roots));
            json::Value row = json::Value::object();
            row["method"] = "crude";
            row["hits"] = static_cast<std::uint64_t>(hits);
            row["estimate"] = static_cast<double>(hits) / static_cast<double>(roots);
            report.add_row(std::move(row));
        }

        // Importance splitting on the failed-component count.
        {
            std::string level;
            for (int i = 0; i < components; ++i) {
                if (i > 0) level += " + ";
                level += "(if c" + std::to_string(i) + ".broken then 1 else 0)";
            }
            rare::SplittingOptions opt;
            opt.splitting_factor = factor;
            opt.base_runs = roots;
            const auto lf = rare::make_level_function(net.model(), level);
            const auto res =
                rare::estimate_splitting(net, prop, sim::StrategyKind::Asap, lf, 1, opt);
            std::printf("splitting (K=%zu):    %s\n", factor, res.to_string().c_str());
            std::printf("relative error:      %.1f%%\n",
                        100.0 * std::abs(res.estimate - exact) / exact);
            json::Value row = json::Value::object();
            row["method"] = "splitting";
            row["estimate"] = res.estimate;
            row["relative_error"] = std::abs(res.estimate - exact) / exact;
            report.add_row(std::move(row));

            // Paths-to-convergence speedup over crude Monte Carlo: for the
            // variance sigma^2/R the splitting run achieved, a crude
            // Bernoulli estimator needs p(1-p)/var = p(1-p) R / sigma^2
            // paths; the speedup factor charges splitting for every clone it
            // simulated. CI's bench-smoke job gates on this section.
            json::Value speedup = json::Value::object();
            speedup["exact_p"] = exact;
            speedup["splitting_roots"] = static_cast<std::uint64_t>(res.base_runs);
            speedup["splitting_paths"] = static_cast<std::uint64_t>(res.total_paths);
            speedup["variance_per_root"] = res.variance_per_root;
            const double crude_equiv =
                res.variance_per_root > 0.0
                    ? exact * (1.0 - exact) * static_cast<double>(res.base_runs) /
                          res.variance_per_root
                    : 0.0;
            speedup["crude_paths_equivalent"] = crude_equiv;
            const double speedup_factor =
                res.total_paths > 0
                    ? crude_equiv / static_cast<double>(res.total_paths)
                    : 0.0;
            speedup["factor"] = speedup_factor;
            report.root()["speedup_vs_crude"] = std::move(speedup);
            std::printf("paths to this CI:    splitting %zu vs crude ~%.3g "
                        "(speedup %.1fx)\n",
                        res.total_paths, crude_equiv, speedup_factor);
        }
        std::puts("\nexpected: crude MC sees ~0 hits; splitting lands within a small"
                  " factor of the exact value at comparable work.");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
