// Ablation: memory policies (paper Sec. VII future work cites the memory
// policies of [18]). When a Markovian event preempts the strategy's
// scheduled delay, Restart re-asks the strategy while Continue keeps the
// scheduled absolute time if still feasible.
//
//   $ ./bench_memory_policy [--eps E]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "models/launcher.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        double eps = 0.02;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        models::LauncherOptions opt;
        opt.recoverable_dpu = true;
        const eda::Network net =
            eda::build_network_from_source(models::launcher_source(opt));
        const sim::TimedReachability prop =
            sim::make_reachability(net.model(), models::launcher_goal(), 2.0 * 3600.0);
        const stat::ChernoffHoeffding criterion(0.1, eps);
        benchio::Report report("memory_policy");
        report.param("eps", eps);
        report.param("paths", static_cast<std::uint64_t>(*criterion.fixed_sample_count()));

        std::printf("== memory policy ablation (launcher, recoverable DPUs, N = %zu) "
                    "==\n",
                    *criterion.fixed_sample_count());
        std::printf("%-12s  %-12s  %-12s  %-10s\n", "strategy", "restart", "continue",
                    "delta");
        for (const auto kind : sim::automated_strategies()) {
            sim::SimOptions restart;
            sim::SimOptions cont;
            cont.memory = sim::MemoryPolicy::Continue;
            const double pr = sim::estimate(net, prop, kind, criterion, 5, restart).estimate;
            const double pc = sim::estimate(net, prop, kind, criterion, 5, cont).estimate;
            std::printf("%-12s  %-12.4f  %-12.4f  %+.4f\n", sim::to_string(kind).c_str(),
                        pr, pc, pc - pr);
            json::Value row = json::Value::object();
            row["strategy"] = sim::to_string(kind);
            row["restart"] = pr;
            row["continue"] = pc;
            row["delta"] = pc - pr;
            report.add_row(std::move(row));
        }
        std::puts("\nexpected: ASAP/MaxTime are insensitive (their choices are\n"
                  "re-derived identically); Local/Progressive can shift, since Continue\n"
                  "preserves a delay sampled in an older state.");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
