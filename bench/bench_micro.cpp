// Hot-path microbenchmarks (google-benchmark): interval algebra, timed
// expression solving, network stepping and end-to-end path generation.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "expr/eval.hpp"
#include "models/gps.hpp"
#include "models/sensor_filter.hpp"
#include "sim/runner.hpp"
#include "slim/parser.hpp"

namespace {

using namespace slimsim;

void BM_IntervalIntersect(benchmark::State& state) {
    const IntervalSet a({{0.0, 4.0}, {6.0, 10.0}, {12.0, 20.0}});
    const IntervalSet b({{3.0, 7.0}, {9.0, 13.0}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.intersect(b));
    }
}
BENCHMARK(BM_IntervalIntersect);

void BM_IntervalUnite(benchmark::State& state) {
    const IntervalSet a({{0.0, 4.0}, {6.0, 10.0}, {12.0, 20.0}});
    const IntervalSet b({{3.0, 7.0}, {9.0, 13.0}});
    for (auto _ : state) {
        benchmark::DoNotOptimize(a.unite(b));
    }
}
BENCHMARK(BM_IntervalUnite);

void BM_ExpressionEval(benchmark::State& state) {
    expr::ExprPtr e = slim::parse_expression("(1 + 2) * 3 > 4 and (true or 5 < 6)");
    DiagnosticSink sink;
    slim::resolve_const_expr(*e, sink);
    const expr::EvalContext ctx{{}, {}};
    for (auto _ : state) {
        benchmark::DoNotOptimize(expr::evaluate(*e, ctx));
    }
}
BENCHMARK(BM_ExpressionEval);

void BM_ParseGpsModel(benchmark::State& state) {
    const std::string src = models::gps_source();
    for (auto _ : state) {
        benchmark::DoNotOptimize(slim::parse_model(src));
    }
}
BENCHMARK(BM_ParseGpsModel);

void BM_BuildNetworkGps(benchmark::State& state) {
    const std::string src = models::gps_source();
    for (auto _ : state) {
        benchmark::DoNotOptimize(eda::build_network_from_source(src));
    }
}
BENCHMARK(BM_BuildNetworkGps);

void BM_GpsPath(benchmark::State& state) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::gps_goal(), 1800.0);
    const auto strat = sim::make_strategy(sim::StrategyKind::Progressive);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.run(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GpsPath);

void BM_SensorFilterPath(benchmark::State& state) {
    const int r = static_cast<int>(state.range(0));
    const eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(r));
    const sim::TimedReachability prop = sim::make_reachability(
        net.model(), models::sensor_filter_goal(), 100.0 * 3600.0);
    const auto strat = sim::make_strategy(sim::StrategyKind::Asap);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.run(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SensorFilterPath)->Arg(1)->Arg(2)->Arg(4);

// --- interpreter vs compiled paths/sec --------------------------------------
//
// One pair per CI-tracked harness config (bench_strategies_gps and
// bench_table1): the same model/property/strategy driven by the reference
// tree-walking interpreter and by the compiled engine (the default). CI's
// bench-smoke job parses items_per_second from BENCH_micro.json and fails
// when compiled/interpreter < 1.5x (the full 2x target is tracked in the
// artifact; smoke runners are noisy).

void run_paths(benchmark::State& state, eda::Network& net, const std::string& goal,
               double bound, sim::StrategyKind kind, bool reference) {
    net.set_reference_interpreter(reference);
    const sim::TimedReachability prop = sim::make_reachability(net.model(), goal, bound);
    const auto strat = sim::make_strategy(kind);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.run(rng));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// The bench_strategies_gps config: GPS acquisition model, Progressive
// strategy, fix-by-deadline reachability.
void BM_StrategiesGpsPaths_Interpreter(benchmark::State& state) {
    eda::Network net = eda::build_network_from_source(models::gps_source());
    run_paths(state, net, models::gps_goal(), 600.0, sim::StrategyKind::Progressive,
              /*reference=*/true);
}
BENCHMARK(BM_StrategiesGpsPaths_Interpreter);

void BM_StrategiesGpsPaths_Compiled(benchmark::State& state) {
    eda::Network net = eda::build_network_from_source(models::gps_source());
    run_paths(state, net, models::gps_goal(), 600.0, sim::StrategyKind::Progressive,
              /*reference=*/false);
}
BENCHMARK(BM_StrategiesGpsPaths_Compiled);

// The bench_table1 simulator config: sensor/filter redundancy benchmark
// (R = 2), ASAP strategy, failure within the mission horizon.
void BM_Table1Paths_Interpreter(benchmark::State& state) {
    eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(2));
    run_paths(state, net, models::sensor_filter_goal(), 10.0 * 3600.0,
              sim::StrategyKind::Asap, /*reference=*/true);
}
BENCHMARK(BM_Table1Paths_Interpreter);

void BM_Table1Paths_Compiled(benchmark::State& state) {
    eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(2));
    run_paths(state, net, models::sensor_filter_goal(), 10.0 * 3600.0,
              sim::StrategyKind::Asap, /*reference=*/false);
}
BENCHMARK(BM_Table1Paths_Compiled);

void BM_CandidateEnumeration(benchmark::State& state) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const eda::NetworkState s = net.initial_state();
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.candidates(s, 120.0));
    }
}
BENCHMARK(BM_CandidateEnumeration);

void BM_InvariantHorizon(benchmark::State& state) {
    const eda::Network net = eda::build_network_from_source(models::gps_source());
    const eda::NetworkState s = net.initial_state();
    for (auto _ : state) {
        benchmark::DoNotOptimize(net.invariant_horizon(s));
    }
}
BENCHMARK(BM_InvariantHorizon);

} // namespace

// Custom main instead of BENCHMARK_MAIN(): in addition to the console
// table, mirror the results as BENCH_micro.json (google-benchmark's own
// JSON schema) so CI's bench-smoke job can parse every bench's output the
// same way (see bench_main.hpp for the harness the table benches use).
// Implemented by injecting --benchmark_out flags ahead of the user's
// arguments (which can therefore still override the destination).
int main(int argc, char** argv) {
    std::string path = "BENCH_micro.json";
    if (const char* dir = std::getenv("SLIMSIM_BENCH_DIR");
        dir != nullptr && dir[0] != '\0') {
        path = std::string(dir) + "/" + path;
    }
    std::string out_flag = "--benchmark_out=" + path;
    std::string format_flag = "--benchmark_out_format=json";
    std::vector<char*> args;
    args.push_back(argv[0]);
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
    for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    std::fprintf(stderr, "wrote %s\n", path.c_str());
    benchmark::Shutdown();
    return 0;
}
