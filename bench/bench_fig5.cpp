// Fig. 5: launcher failure probability over the mission time, per strategy.
//
//   $ ./bench_fig5 [--variant permanent|recoverable|both] [--eps E]
//                  [--delta D] [--mission MIN] [--grid N]
//
// Left graph (permanent DPU faults): all strategies coincide.
// Right graph (recoverable DPU faults): ASAP repairs too early and loses
// DPUs for good, MaxTime always repairs in time; Local/Progressive land in
// between. Each strategy's whole curve P( <> [0,u] failure ) comes from ONE
// engine run in shared-path curve mode (sim::estimate_curve); a local
// re-simulation of the same per-path RNG streams cross-checks the engine
// points against the empirical CDF of goal-hit times. The speedup section
// compares that one run against the K independent single-bound runs it
// replaces.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "models/launcher.hpp"
#include "sim/runner.hpp"

namespace {

using namespace slimsim;

std::vector<double> uniform_grid(double u_max, std::size_t k) {
    std::vector<double> grid;
    grid.reserve(k);
    for (std::size_t i = 1; i <= k; ++i) {
        grid.push_back(u_max * static_cast<double>(i) / static_cast<double>(k));
    }
    return grid;
}

/// Empirical CDF cross-check: re-simulates the exact per-path streams the
/// curve engine used (Rng(seed).split(j)) and counts hits per bound by hand.
/// Returns true iff every grid point matches the engine's successes exactly.
bool cross_check(const eda::Network& net, const sim::TimedReachability& prop,
                 sim::StrategyKind kind, std::uint64_t seed,
                 const std::vector<double>& grid, const sim::CurveResult& res) {
    auto strat = sim::make_strategy(kind);
    const sim::PathGenerator gen(net, prop, *strat);
    const Rng master(seed);
    std::vector<double> hits;
    for (std::uint64_t j = 0; j < res.samples; ++j) {
        Rng rng = master.split(j);
        const sim::PathOutcome out = gen.run(rng);
        if (out.satisfied) hits.push_back(out.end_time);
    }
    std::sort(hits.begin(), hits.end());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto expected = static_cast<std::uint64_t>(
            std::upper_bound(hits.begin(), hits.end(), grid[i]) - hits.begin());
        if (res.points[i].successes != expected) return false;
    }
    return true;
}

void run_variant(bool recoverable, double delta, double eps, double mission_min,
                 std::size_t grid_points, std::FILE* csv, benchio::Report& report) {
    models::LauncherOptions opt;
    opt.recoverable_dpu = recoverable;
    const eda::Network net = eda::build_network_from_source(models::launcher_source(opt));
    const double u_max = mission_min * 60.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::launcher_goal(), u_max);
    const std::vector<double> grid = uniform_grid(u_max, grid_points);

    // The DKW band gives the whole grid simultaneous 1-delta confidence at
    // the single-bound Chernoff-Hoeffding sample count — the curve is free.
    const stat::ChernoffHoeffding criterion(
        stat::per_bound_delta(stat::BandKind::DKW, delta, grid.size()), eps);
    sim::CurveOptions co;
    co.bounds = grid;
    co.delta = delta;

    std::printf("\n== Fig. 5 %s: %s DPU faults (N = %zu shared paths per strategy, "
                "%zu-point curve) ==\n",
                recoverable ? "right" : "left",
                recoverable ? "recoverable" : "permanent",
                stat::ChernoffHoeffding::sample_count(delta, eps), grid.size());
    std::printf("%-10s", "u [min]");
    const auto strategies = sim::automated_strategies();
    for (const auto k : strategies) std::printf("  %-12s", sim::to_string(k).c_str());
    std::printf("\n");

    std::vector<sim::CurveResult> curves;
    bool all_exact = true;
    for (std::size_t si = 0; si < strategies.size(); ++si) {
        const std::uint64_t seed = 1000 + si;
        curves.push_back(
            sim::estimate_curve(net, prop, strategies[si], criterion, co, seed));
        all_exact = all_exact &&
                    cross_check(net, prop, strategies[si], seed, grid, curves.back());
    }
    for (std::size_t gi = 0; gi < grid.size(); ++gi) {
        const double u = grid[gi];
        std::printf("%-10.0f", u / 60.0);
        if (csv != nullptr) {
            std::fprintf(csv, "%s,%g", recoverable ? "recoverable" : "permanent",
                         u / 60.0);
        }
        json::Value row = json::Value::object();
        row["variant"] = recoverable ? "recoverable" : "permanent";
        row["u_min"] = u / 60.0;
        for (std::size_t si = 0; si < strategies.size(); ++si) {
            const double p = curves[si].points[gi].estimate;
            std::printf("  %-12.4f", p);
            if (csv != nullptr) std::fprintf(csv, ",%.6f", p);
            row[sim::to_string(strategies[si])] = p;
        }
        report.add_row(std::move(row));
        std::printf("\n");
        if (csv != nullptr) std::fprintf(csv, "\n");
    }
    std::printf("cross-check vs empirical hit-time CDF: %s\n",
                all_exact ? "exact" : "MISMATCH");
    if (!all_exact) report.root()["cross_check_failed"] = true;
    if (recoverable) {
        std::puts("expected: asap >= local >= progressive >= maxtime (pointwise),"
                  " with clear asap/maxtime separation");
    } else {
        std::puts("expected: all four curves coincide within eps");
    }
}

/// One shared-path curve run vs the K independent single-bound runs it
/// replaces (permanent variant, Progressive strategy). Writes the "speedup"
/// section CI validates.
void measure_speedup(double delta, double eps, double mission_min,
                     std::size_t grid_points, benchio::Report& report) {
    models::LauncherOptions opt;
    opt.recoverable_dpu = false;
    const eda::Network net = eda::build_network_from_source(models::launcher_source(opt));
    const double u_max = mission_min * 60.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::launcher_goal(), u_max);
    const std::vector<double> grid = uniform_grid(u_max, grid_points);
    const std::uint64_t seed = 4242;

    const stat::ChernoffHoeffding criterion(
        stat::per_bound_delta(stat::BandKind::DKW, delta, grid.size()), eps);
    sim::CurveOptions co;
    co.bounds = grid;
    co.delta = delta;

    sim::CurveResult curve;
    const benchio::Timing curve_t = benchio::measure(
        [&] {
            curve = sim::estimate_curve(net, prop, sim::StrategyKind::Progressive,
                                        criterion, co, seed);
        },
        1, 0);
    const bool exact = cross_check(net, prop, sim::StrategyKind::Progressive, seed,
                                   grid, curve);

    // Baseline: what the old workflow costs — one full estimation per bound.
    const stat::ChernoffHoeffding single(delta, eps);
    const benchio::Timing repeated_t = benchio::measure(
        [&] {
            for (const double u : grid) {
                sim::TimedReachability p = prop;
                p.bound = u;
                (void)sim::estimate(net, p, sim::StrategyKind::Progressive, single, seed);
            }
        },
        1, 0);

    const double factor = curve_t.min_seconds > 0.0
                              ? repeated_t.min_seconds / curve_t.min_seconds
                              : 0.0;
    std::printf("\n== speedup: %zu-point curve, one shared-path run vs %zu "
                "independent runs ==\n",
                grid.size(), grid.size());
    std::printf("curve run:     %.3f s (%zu paths)\n", curve_t.min_seconds,
                curve.samples);
    std::printf("repeated runs: %.3f s\n", repeated_t.min_seconds);
    std::printf("speedup:       %.1fx, cross-check %s\n", factor,
                exact ? "exact" : "MISMATCH");

    json::Value sp = json::Value::object();
    sp["grid_points"] = static_cast<std::uint64_t>(grid.size());
    sp["curve_seconds"] = curve_t.min_seconds;
    sp["repeated_seconds"] = repeated_t.min_seconds;
    sp["factor"] = factor;
    sp["cross_check"] = exact ? "exact" : "mismatch";
    report.root()["speedup"] = std::move(sp);
}

} // namespace

int main(int argc, char** argv) {
    try {
        std::string variant = "both";
        std::string csv_path;
        double eps = 0.02;
        double delta = 0.1;
        double mission_min = 120.0;
        std::size_t grid_points = 16;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
                variant = argv[++i];
            } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
                csv_path = argv[++i];
            } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
                delta = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--mission") == 0 && i + 1 < argc) {
                mission_min = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--grid") == 0 && i + 1 < argc) {
                grid_points = static_cast<std::size_t>(std::stoul(argv[++i]));
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        if (grid_points == 0) {
            std::fprintf(stderr, "--grid must be positive\n");
            return 2;
        }
        benchio::Report report("fig5");
        report.param("variant", variant);
        report.param("eps", eps);
        report.param("delta", delta);
        report.param("mission_min", mission_min);
        report.param("grid", static_cast<std::uint64_t>(grid_points));
        std::FILE* csv = nullptr;
        if (!csv_path.empty()) {
            csv = std::fopen(csv_path.c_str(), "w");
            if (csv == nullptr) {
                std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
                return 1;
            }
            std::fputs("variant,u_min,asap,progressive,local,maxtime\n", csv);
        }
        if (variant == "permanent" || variant == "both") {
            run_variant(false, delta, eps, mission_min, grid_points, csv, report);
        }
        if (variant == "recoverable" || variant == "both") {
            run_variant(true, delta, eps, mission_min, grid_points, csv, report);
        }
        measure_speedup(delta, eps, mission_min, grid_points, report);
        if (csv != nullptr) {
            std::fclose(csv);
            std::printf("\nwrote %s\n", csv_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
