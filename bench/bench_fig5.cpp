// Fig. 5: launcher failure probability over the mission time, per strategy.
//
//   $ ./bench_fig5 [--variant permanent|recoverable|both] [--eps E]
//                  [--delta D] [--mission MIN]
//
// Left graph (permanent DPU faults): all strategies coincide.
// Right graph (recoverable DPU faults): ASAP repairs too early and loses
// DPUs for good, MaxTime always repairs in time; Local/Progressive land in
// between. Each strategy runs N paths to the full mission horizon; the
// curve P( <> [0,u] failure ) is the empirical CDF of goal-hit times.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "models/launcher.hpp"
#include "sim/runner.hpp"

namespace {

using namespace slimsim;

std::vector<double> hit_times(const eda::Network& net, const sim::TimedReachability& prop,
                              sim::StrategyKind kind, std::size_t paths,
                              std::uint64_t seed) {
    auto strat = sim::make_strategy(kind);
    const sim::PathGenerator gen(net, prop, *strat);
    Rng rng(seed);
    std::vector<double> hits;
    for (std::size_t i = 0; i < paths; ++i) {
        const sim::PathOutcome out = gen.run(rng);
        if (out.satisfied) hits.push_back(out.end_time);
    }
    std::sort(hits.begin(), hits.end());
    return hits;
}

void run_variant(bool recoverable, double delta, double eps, double mission_min,
                 std::FILE* csv, benchio::Report& report) {
    models::LauncherOptions opt;
    opt.recoverable_dpu = recoverable;
    const eda::Network net = eda::build_network_from_source(models::launcher_source(opt));
    const double u_max = mission_min * 60.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::launcher_goal(), u_max);
    const std::size_t n = stat::ChernoffHoeffding::sample_count(delta, eps);

    std::printf("\n== Fig. 5 %s: %s DPU faults (N = %zu paths per strategy) ==\n",
                recoverable ? "right" : "left",
                recoverable ? "recoverable" : "permanent", n);
    std::printf("%-10s", "u [min]");
    const auto strategies = sim::automated_strategies();
    for (const auto k : strategies) std::printf("  %-12s", sim::to_string(k).c_str());
    std::printf("\n");

    std::vector<std::vector<double>> hits;
    for (std::size_t si = 0; si < strategies.size(); ++si) {
        hits.push_back(hit_times(net, prop, strategies[si], n, 1000 + si));
    }
    for (double frac = 0.125; frac <= 1.0001; frac += 0.125) {
        const double u = frac * u_max;
        std::printf("%-10.0f", u / 60.0);
        if (csv != nullptr) {
            std::fprintf(csv, "%s,%g", recoverable ? "recoverable" : "permanent",
                         u / 60.0);
        }
        json::Value row = json::Value::object();
        row["variant"] = recoverable ? "recoverable" : "permanent";
        row["u_min"] = u / 60.0;
        for (std::size_t si = 0; si < strategies.size(); ++si) {
            const auto& h = hits[si];
            const auto count = static_cast<double>(
                std::upper_bound(h.begin(), h.end(), u) - h.begin());
            const double p = count / static_cast<double>(n);
            std::printf("  %-12.4f", p);
            if (csv != nullptr) std::fprintf(csv, ",%.6f", p);
            row[sim::to_string(strategies[si])] = p;
        }
        report.add_row(std::move(row));
        std::printf("\n");
        if (csv != nullptr) std::fprintf(csv, "\n");
    }
    if (recoverable) {
        std::puts("expected: asap >= local >= progressive >= maxtime (pointwise),"
                  " with clear asap/maxtime separation");
    } else {
        std::puts("expected: all four curves coincide within eps");
    }
}

} // namespace

int main(int argc, char** argv) {
    try {
        std::string variant = "both";
        std::string csv_path;
        double eps = 0.02;
        double delta = 0.1;
        double mission_min = 120.0;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--variant") == 0 && i + 1 < argc) {
                variant = argv[++i];
            } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
                csv_path = argv[++i];
            } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
                delta = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--mission") == 0 && i + 1 < argc) {
                mission_min = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        benchio::Report report("fig5");
        report.param("variant", variant);
        report.param("eps", eps);
        report.param("delta", delta);
        report.param("mission_min", mission_min);
        std::FILE* csv = nullptr;
        if (!csv_path.empty()) {
            csv = std::fopen(csv_path.c_str(), "w");
            if (csv == nullptr) {
                std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
                return 1;
            }
            std::fputs("variant,u_min,asap,progressive,local,maxtime\n", csv);
        }
        if (variant == "permanent" || variant == "both") {
            run_variant(false, delta, eps, mission_min, csv, report);
        }
        if (variant == "recoverable" || variant == "both") {
            run_variant(true, delta, eps, mission_min, csv, report);
        }
        if (csv != nullptr) {
            std::fclose(csv);
            std::printf("\nwrote %s\n", csv_path.c_str());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
