// Parallelization (paper Sec. III-C): worker scaling and collection bias.
//
//   $ ./bench_parallel [--eps E]
//
// Part 1: wall-clock scaling of the parallel estimator over worker counts.
// Part 2: the bias hazard of first-come sample collection [21] and its fix
// by round-robin buffered collection [22], demonstrated with a synthetic
// outcome/latency-correlated workload fed straight into the collector.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "bench_main.hpp"
#include "models/gps.hpp"
#include "models/sensor_filter.hpp"
#include "sim/parallel_runner.hpp"
#include "sim/supervise/supervise.hpp"
#include "stat/collector.hpp"
#include "support/journal.hpp"
#include "support/metrics.hpp"
#include "support/tracer/tracer.hpp"

namespace {

using namespace slimsim;

void scaling(double eps, benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(5));
    const sim::TimedReachability prop = sim::make_reachability(
        net.model(), models::sensor_filter_goal(), 200.0 * 3600.0);
    const stat::ChernoffHoeffding criterion(0.05, eps);
    std::printf("== worker scaling (N = %zu paths, %u hardware threads) ==\n",
                *criterion.fixed_sample_count(), std::thread::hardware_concurrency());
    std::puts("note: speedup is bounded by the hardware thread count; on a single-core"
              "\nhost this bench only demonstrates that parallelism adds no bias/cost.");
    std::printf("%-8s  %-10s  %-10s  %-10s  %-8s\n", "workers", "estimate", "time",
                "paths/s", "speedup");
    double base = 0.0;
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        sim::EstimationResult res;
        if (workers == 1) {
            res = sim::estimate(net, prop, sim::StrategyKind::Asap, criterion, 3);
        } else {
            sim::ParallelOptions po;
            po.workers = workers;
            res = sim::estimate_parallel(net, prop, sim::StrategyKind::Asap, criterion, 3,
                                         po);
        }
        if (workers == 1) base = res.wall_seconds;
        std::printf("%-8zu  %-10.4f  %-9.2fs  %-10.0f  %.2fx\n", workers, res.estimate,
                    res.wall_seconds, static_cast<double>(res.samples) / res.wall_seconds,
                    base / res.wall_seconds);
        json::Value row = json::Value::object();
        row["workers"] = static_cast<std::uint64_t>(workers);
        row["estimate"] = res.estimate;
        row["seconds"] = res.wall_seconds;
        row["paths_per_s"] = static_cast<double>(res.samples) / res.wall_seconds;
        row["speedup"] = base / res.wall_seconds;
        report.add_row(std::move(row));
    }
}

// Execution-trace overhead: the same fixed-N parallel estimation with the
// tracer left disabled (hot path sees only null-lane checks) vs. attached
// (per-worker ring buffers recording every span). The disabled number is
// the headline throughput CI tracks; the acceptance bound is that carrying
// the instrumentation costs < 2% when no tracer is attached.
void tracing_overhead(benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::sensor_filter_source(4));
    const sim::TimedReachability prop = sim::make_reachability(
        net.model(), models::sensor_filter_goal(), 200.0 * 3600.0);
    const stat::ChernoffHoeffding criterion(0.05, 0.02);
    const std::size_t n = *criterion.fixed_sample_count();
    std::printf("\n== tracing overhead (N = %zu paths, 4 workers, min of 3 reps) ==\n",
                n);
    json::Value section = json::Value::object();
    double disabled_pps = 0.0;
    for (const bool traced : {false, true}) {
        tracer::Tracer tracer(tracer::Tracer::Options{traced, 1 << 14});
        const auto timing = benchio::measure(
            [&] {
                sim::ParallelOptions po;
                po.workers = 4;
                if (traced) po.tracer = &tracer;
                (void)sim::estimate_parallel(net, prop, sim::StrategyKind::Asap,
                                             criterion, 9, po);
            },
            3, 1);
        const double pps = static_cast<double>(n) / timing.min_seconds;
        std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n",
                    traced ? "tracer attached" : "tracer disabled", timing.min_seconds,
                    pps);
        section[traced ? "enabled" : "disabled"] = timing.to_json();
        section[traced ? "enabled_paths_per_s" : "disabled_paths_per_s"] = pps;
        if (!traced) disabled_pps = pps;
        if (traced && disabled_pps > 0.0) {
            const double overhead = (disabled_pps / pps - 1.0) * 100.0;
            std::printf("recording overhead: %.1f%%\n", overhead);
            section["recording_overhead_percent"] = overhead;
        }
    }
    report.root()["tracing_overhead"] = std::move(section);
}

// Coverage-profiler overhead: a fixed-N parallel *curve* estimation with
// coverage off vs. on. The curve runner always uses per-path RNG streams
// and sample-granular ordered draining — exactly the regime coverage
// requires — so both sides simulate the byte-identical path set and the
// ratio isolates pure recording cost (shard hooks + decision observer +
// merge), not a change of workload. The model is the power-cycled GPS:
// its restart loop keeps paths long (~300 steps at a 96 h bound), which is
// the regime coverage profiling targets, and keeps per-path bookkeeping
// amortized. The acceptance bound CI enforces is <= 10% recording overhead.
void coverage_overhead(benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const double bound = 96.0 * 3600.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::gps_restart_goal(), bound);
    const stat::ChernoffHoeffding criterion(0.05, 0.03);
    const std::size_t n = *criterion.fixed_sample_count();
    std::printf("\n== coverage overhead (N = %zu paths, 4 workers, min of 10 "
                "interleaved reps) ==\n",
                n);
    auto run = [&](bool profiled) {
        return [&, profiled] {
            sim::ParallelOptions po;
            po.workers = 4;
            po.sim.coverage = profiled;
            sim::CurveOptions curve;
            curve.bounds = {bound};
            (void)sim::estimate_curve_parallel(net, prop, sim::StrategyKind::Asap,
                                               criterion, curve, 9, po);
        };
    };
    // Reps are interleaved: the CI bound is on the off/on throughput ratio,
    // which host drift would skew if the two sides were measured in
    // separate windows.
    const auto [off, on] = benchio::measure_interleaved(run(false), run(true), 10, 2);
    json::Value section = json::Value::object();
    const double disabled_pps = static_cast<double>(n) / off.min_seconds;
    const double enabled_pps = static_cast<double>(n) / on.min_seconds;
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "coverage off", off.min_seconds,
                disabled_pps);
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "coverage on", on.min_seconds,
                enabled_pps);
    const double overhead = (disabled_pps / enabled_pps - 1.0) * 100.0;
    std::printf("recording overhead: %.1f%%\n", overhead);
    section["disabled"] = off.to_json();
    section["enabled"] = on.to_json();
    section["disabled_paths_per_s"] = disabled_pps;
    section["enabled_paths_per_s"] = enabled_pps;
    section["recording_overhead_percent"] = overhead;
    report.root()["coverage_overhead"] = std::move(section);
}

// Checkpoint overhead: the same fixed-N parallel curve estimation with
// periodic checkpointing off vs. on. A --checkpoint path forces per-path
// RNG streams — but the curve runner uses them anyway, so both sides
// simulate the byte-identical path set and the ratio isolates the pure
// snapshot cost (serializing the Fenwick tree + fsync-free atomic rename
// every `checkpoint_every` accepted samples). The acceptance bound CI
// enforces is <= 5% overhead (docs/robustness.md).
void checkpoint_overhead(benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const double bound = 96.0 * 3600.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::gps_restart_goal(), bound);
    const stat::ChernoffHoeffding criterion(0.05, 0.03);
    const std::size_t n = *criterion.fixed_sample_count();
    const std::string ck_path = "bench_checkpoint.ckpt";
    const std::uint64_t every = 256;
    std::printf("\n== checkpoint overhead (N = %zu paths, 4 workers, snapshot every "
                "%llu samples, min of 10 interleaved reps) ==\n",
                n, static_cast<unsigned long long>(every));
    auto run = [&](bool checkpointed) {
        return [&, checkpointed] {
            sim::ParallelOptions po;
            po.workers = 4;
            if (checkpointed) {
                po.sim.control.checkpoint_path = ck_path;
                po.sim.control.checkpoint_every = every;
            }
            sim::CurveOptions curve;
            curve.bounds = {bound};
            (void)sim::estimate_curve_parallel(net, prop, sim::StrategyKind::Asap,
                                               criterion, curve, 9, po);
        };
    };
    const auto [off, on] = benchio::measure_interleaved(run(false), run(true), 10, 2);
    std::remove(ck_path.c_str());
    json::Value section = json::Value::object();
    const double disabled_pps = static_cast<double>(n) / off.min_seconds;
    const double enabled_pps = static_cast<double>(n) / on.min_seconds;
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "checkpoint off", off.min_seconds,
                disabled_pps);
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "checkpoint on", on.min_seconds,
                enabled_pps);
    const double overhead = (disabled_pps / enabled_pps - 1.0) * 100.0;
    std::printf("recording overhead: %.1f%%\n", overhead);
    section["disabled"] = off.to_json();
    section["enabled"] = on.to_json();
    section["disabled_paths_per_s"] = disabled_pps;
    section["enabled_paths_per_s"] = enabled_pps;
    section["recording_overhead_percent"] = overhead;
    report.root()["checkpoint_overhead"] = std::move(section);
}

// Live-metrics overhead: the same fixed-N parallel estimation with the
// sharded metrics registry detached vs. attached (path/step/fire counters,
// per-path wall-time histogram, collector depth gauge and drain-latency
// histogram all firing). Both sides simulate the byte-identical path set,
// so the ratio isolates the pure instrument cost — relaxed fetch_adds on
// per-worker cache lines. The acceptance bound CI enforces is <= 5%
// overhead (docs/observability.md).
void metrics_overhead(benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const double bound = 96.0 * 3600.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::gps_restart_goal(), bound);
    const stat::ChernoffHoeffding criterion(0.05, 0.03);
    const std::size_t n = *criterion.fixed_sample_count();
    std::printf("\n== live metrics overhead (N = %zu paths, 4 workers, min of 10 "
                "interleaved reps) ==\n",
                n);
    auto run = [&](bool instrumented) {
        return [&, instrumented] {
            metrics::Registry registry(4);
            sim::ParallelOptions po;
            po.workers = 4;
            if (instrumented) po.sim.metrics = &registry;
            (void)sim::estimate_parallel(net, prop, sim::StrategyKind::Asap, criterion,
                                         9, po);
        };
    };
    const auto [off, on] = benchio::measure_interleaved(run(false), run(true), 10, 2);
    json::Value section = json::Value::object();
    const double disabled_pps = static_cast<double>(n) / off.min_seconds;
    const double enabled_pps = static_cast<double>(n) / on.min_seconds;
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "metrics off", off.min_seconds,
                disabled_pps);
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "metrics on", on.min_seconds,
                enabled_pps);
    const double overhead = (disabled_pps / enabled_pps - 1.0) * 100.0;
    std::printf("recording overhead: %.1f%%\n", overhead);
    section["disabled"] = off.to_json();
    section["enabled"] = on.to_json();
    section["disabled_paths_per_s"] = disabled_pps;
    section["enabled_paths_per_s"] = enabled_pps;
    section["recording_overhead_percent"] = overhead;
    report.root()["metrics_overhead"] = std::move(section);
}

// Run-journal overhead: the same fixed-N parallel estimation with the
// journal detached vs. attached at debug level (worker quarantine rings
// armed, serial lifecycle events, trajectory marks under per-path streams).
// Both sides force deterministic per-path streams so they simulate the
// byte-identical path set and the ratio isolates the pure recording cost.
// The acceptance bound CI enforces is <= 5% overhead
// (docs/observability.md).
void journal_overhead(benchio::Report& report) {
    const eda::Network net =
        eda::build_network_from_source(models::gps_restart_source(true));
    const double bound = 96.0 * 3600.0;
    const sim::TimedReachability prop =
        sim::make_reachability(net.model(), models::gps_restart_goal(), bound);
    const stat::ChernoffHoeffding criterion(0.05, 0.03);
    const std::size_t n = *criterion.fixed_sample_count();
    std::printf("\n== run journal overhead (N = %zu paths, 4 workers, min of 10 "
                "interleaved reps) ==\n",
                n);
    auto run = [&](bool logged) {
        return [&, logged] {
            journal::Journal journal(journal::Level::Debug);
            sim::ParallelOptions po;
            po.workers = 4;
            po.sim.control.deterministic_streams = true;
            if (logged) po.sim.journal = &journal;
            (void)sim::estimate_parallel(net, prop, sim::StrategyKind::Asap, criterion,
                                         9, po);
        };
    };
    const auto [off, on] = benchio::measure_interleaved(run(false), run(true), 10, 2);
    json::Value section = json::Value::object();
    const double disabled_pps = static_cast<double>(n) / off.min_seconds;
    const double enabled_pps = static_cast<double>(n) / on.min_seconds;
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "journal off", off.min_seconds,
                disabled_pps);
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "journal on", on.min_seconds,
                enabled_pps);
    const double overhead = (disabled_pps / enabled_pps - 1.0) * 100.0;
    std::printf("recording overhead: %.1f%%\n", overhead);
    section["disabled"] = off.to_json();
    section["enabled"] = on.to_json();
    section["disabled_paths_per_s"] = disabled_pps;
    section["enabled_paths_per_s"] = enabled_pps;
    section["recording_overhead_percent"] = overhead;
    report.root()["journal_overhead"] = std::move(section);
}

// Process-isolation overhead: the same fixed-N estimation with per-path
// RNG streams, run by the in-process parallel runner (4 threads) vs the
// supervised runner (4 worker subprocesses, SLIMWIRE framing, fork/exec
// included). Like-for-like path set — both sides simulate path j with
// Rng(seed).split(j) — so the delta is pure supervision cost: process
// spawn, frame encode/decode/checksum and the coordinator's poll loop.
// CI gates the overhead at <= 10%.
void supervision_overhead(benchio::Report& report) {
    const std::string source = models::sensor_filter_source(4);
    const eda::Network net = eda::build_network_from_source(source);
    const sim::TimedReachability prop = sim::make_reachability(
        net.model(), models::sensor_filter_goal(), 200.0 * 3600.0);
    // Large enough that the fixed fork/exec + handshake cost (~tens of ms)
    // amortizes below the CI gate; the steady-state per-sample wire cost is
    // what the gate actually polices.
    const stat::ChernoffHoeffding criterion(0.05, 0.008);
    const std::size_t n = *criterion.fixed_sample_count();
    const std::string model_file =
        "bench_supervise_" + std::to_string(getpid()) + ".slim";
    {
        std::ofstream out(model_file);
        out << source;
    }
    std::printf("\n== supervision overhead (N = %zu paths, 4 threads vs 4 processes, "
                "min of 3 reps) ==\n",
                n);
    const auto run = [&](bool supervised) {
        return std::function<void()>([&net, &prop, &criterion, &model_file,
                                      supervised] {
            if (supervised) {
                sim::supervise::SuperviseOptions so;
                so.processes = 4;
                so.worker_exe = SLIMSIM_CLI_PATH;
                so.model_path = model_file;
                (void)sim::supervise::estimate_supervised(
                    net, prop, sim::StrategyKind::Asap, criterion, 9, so);
            } else {
                sim::ParallelOptions po;
                po.workers = 4;
                po.sim.control.deterministic_streams = true;
                (void)sim::estimate_parallel(net, prop, sim::StrategyKind::Asap,
                                             criterion, 9, po);
            }
        });
    };
    const auto [threads, procs] = benchio::measure_interleaved(run(false), run(true), 3, 1);
    std::remove(model_file.c_str());
    json::Value section = json::Value::object();
    const double threads_pps = static_cast<double>(n) / threads.min_seconds;
    const double procs_pps = static_cast<double>(n) / procs.min_seconds;
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "in-process", threads.min_seconds,
                threads_pps);
    std::printf("%-18s  %-9.3fs  %-10.0f paths/s\n", "supervised", procs.min_seconds,
                procs_pps);
    const double overhead = (threads_pps / procs_pps - 1.0) * 100.0;
    std::printf("supervision overhead: %.1f%%\n", overhead);
    section["in_process"] = threads.to_json();
    section["supervised"] = procs.to_json();
    section["in_process_paths_per_s"] = threads_pps;
    section["supervised_paths_per_s"] = procs_pps;
    section["overhead_percent"] = overhead;
    report.root()["supervision_overhead"] = std::move(section);
}

void bias_demo(benchio::Report& report) {
    // Synthetic workload reproducing the hazard of [21]: true p = 0.5, but
    // success paths are fast (one tick) while failure paths are slow (two
    // ticks). With 16 workers and a small sample target, stopping on
    // first-come consumption systematically misses the slow failures still
    // in flight; round-robin consumption (one sample per worker per round)
    // accepts every worker's stream in its true order and stays unbiased.
    constexpr std::size_t kWorkers = 16;
    constexpr std::size_t kTarget = 48;
    constexpr int kTrials = 4000;
    std::printf("\n== collection bias demo (true p = 0.5, %zu workers, stop at %zu "
                "samples, %d trials) ==\n",
                kWorkers, kTarget, kTrials);
    std::printf("%-14s  %-12s  %-10s\n", "collection", "mean estimate", "bias");
    for (const bool round_robin : {false, true}) {
        Rng rng(1234);
        double total = 0.0;
        for (int trial = 0; trial < kTrials; ++trial) {
            stat::SampleCollector collector(kWorkers);
            stat::BernoulliSummary summary;
            std::vector<int> busy_until(kWorkers, 0); // failure = 2 ticks
            std::vector<char> pending(kWorkers, 0);
            for (int tick = 0; summary.count < kTarget; ++tick) {
                for (std::size_t w = 0; w < kWorkers; ++w) {
                    if (busy_until[w] > tick) continue;
                    if (pending[w] != 0) {
                        collector.push(w, false); // slow failure completes
                        pending[w] = 0;
                    }
                    if (rng.bernoulli(0.5)) {
                        collector.push(w, true); // fast success, done now
                    } else {
                        pending[w] = 1; // failure needs one more tick
                        busy_until[w] = tick + 2;
                    }
                }
                if (round_robin) {
                    while (summary.count < kTarget &&
                           collector.drain_rounds(summary, 1) > 0) {
                    }
                } else {
                    collector.drain_unordered(summary);
                }
            }
            total += summary.mean();
        }
        const double mean = total / kTrials;
        std::printf("%-14s  %-12.4f  %+.4f\n", round_robin ? "round-robin" : "first-come",
                    mean, mean - 0.5);
        json::Value row = json::Value::object();
        row["collection"] = round_robin ? "round-robin" : "first-come";
        row["mean_estimate"] = mean;
        row["bias"] = mean - 0.5;
        report.root()["bias_demo"].push_back(std::move(row));
    }
    std::puts("expected: first-come is biased high (slow failures are in flight when\n"
              "the target is reached); round-robin stays at ~0.5.");
}

} // namespace

int main(int argc, char** argv) {
    try {
        double eps = 0.01;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        benchio::Report report("parallel");
        report.param("eps", eps);
        report.root()["bias_demo"] = json::Value::array();
        scaling(eps, report);
        tracing_overhead(report);
        coverage_overhead(report);
        checkpoint_overhead(report);
        metrics_overhead(report);
        journal_overhead(report);
        supervision_overhead(report);
        bias_demo(report);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
