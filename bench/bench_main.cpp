#include "bench_main.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace slimsim::benchio {

json::Value Timing::to_json() const {
    json::Value v = json::Value::object();
    v["reps"] = static_cast<std::uint64_t>(seconds.size());
    v["min_s"] = min_seconds;
    v["mean_s"] = mean_seconds;
    v["max_s"] = max_seconds;
    json::Value all = json::Value::array();
    for (const double s : seconds) all.push_back(s);
    v["all_s"] = std::move(all);
    return v;
}

Timing measure(const std::function<void()>& fn, int reps, int warmup) {
    for (int i = 0; i < warmup; ++i) fn();
    Timing t;
    if (reps < 1) reps = 1;
    t.seconds.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        t.seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
    }
    t.min_seconds = t.max_seconds = t.seconds.front();
    double total = 0.0;
    for (const double s : t.seconds) {
        if (s < t.min_seconds) t.min_seconds = s;
        if (s > t.max_seconds) t.max_seconds = s;
        total += s;
    }
    t.mean_seconds = total / static_cast<double>(t.seconds.size());
    return t;
}

namespace {

void finalize(Timing& t) {
    t.min_seconds = t.max_seconds = t.seconds.front();
    double total = 0.0;
    for (const double s : t.seconds) {
        if (s < t.min_seconds) t.min_seconds = s;
        if (s > t.max_seconds) t.max_seconds = s;
        total += s;
    }
    t.mean_seconds = total / static_cast<double>(t.seconds.size());
}

} // namespace

std::pair<Timing, Timing> measure_interleaved(const std::function<void()>& a,
                                              const std::function<void()>& b, int reps,
                                              int warmup) {
    for (int i = 0; i < warmup; ++i) {
        a();
        b();
    }
    if (reps < 1) reps = 1;
    Timing ta;
    Timing tb;
    ta.seconds.reserve(static_cast<std::size_t>(reps));
    tb.seconds.reserve(static_cast<std::size_t>(reps));
    for (int i = 0; i < reps; ++i) {
        for (const bool second : {false, true}) {
            const auto t0 = std::chrono::steady_clock::now();
            (second ? b : a)();
            const auto t1 = std::chrono::steady_clock::now();
            (second ? tb : ta)
                .seconds.push_back(std::chrono::duration<double>(t1 - t0).count());
        }
    }
    finalize(ta);
    finalize(tb);
    return {std::move(ta), std::move(tb)};
}

Report::Report(std::string name) : name_(std::move(name)) {
    doc_ = json::Value::object();
    doc_["bench"] = name_;
    doc_["schema"] = 1;
    doc_["params"] = json::Value::object();
    doc_["rows"] = json::Value::array();
}

Report::~Report() {
    if (!written_) {
        try {
            write();
        } catch (...) {
            // Destructor: swallow I/O failures rather than terminate.
        }
    }
}

void Report::param(const std::string& key, json::Value value) {
    doc_["params"][key] = std::move(value);
}

void Report::add_row(json::Value row) { doc_["rows"].push_back(std::move(row)); }

std::string Report::write() {
    std::string path = "BENCH_" + name_ + ".json";
    if (const char* dir = std::getenv("SLIMSIM_BENCH_DIR");
        dir != nullptr && dir[0] != '\0') {
        path = std::string(dir) + "/" + path;
    }
    std::ofstream out(path);
    if (out) {
        out << doc_.dump(1) << "\n";
        std::fprintf(stderr, "wrote %s\n", path.c_str());
    } else {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    }
    written_ = true;
    return path;
}

} // namespace slimsim::benchio
