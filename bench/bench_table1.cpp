// Table I: exhaustive CTMC flow vs Monte Carlo simulation on the
// sensor/filter redundancy benchmark (paper, Sec. IV).
//
//   $ ./bench_table1 [--max-r R] [--eps E] [--delta D] [--hours H]
//
// Paper columns: model size, CTMC time, CTMC memory, simulator time,
// simulator memory. We additionally print the state-space sizes and both
// probabilities (the paper's claim: values agree within eps; CTMC cost
// explodes with model size, simulation cost stays flat).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "ctmc/flow.hpp"
#include "models/sensor_filter.hpp"
#include "sim/runner.hpp"
#include "support/memprobe.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        int max_r = 5;
        double eps = 0.01;
        double delta = 0.05;
        double hours = 100.0;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--max-r") == 0 && i + 1 < argc) {
                max_r = std::stoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--delta") == 0 && i + 1 < argc) {
                delta = std::stod(argv[++i]);
            } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
                hours = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const double u = hours * 3600.0;
        const stat::ChernoffHoeffding criterion(delta, eps);

        benchio::Report report("table1");
        report.param("max_r", max_r);
        report.param("eps", eps);
        report.param("delta", delta);
        report.param("hours", hours);

        std::printf("== Table I: CTMC flow vs simulator (sensor/filter benchmark) ==\n");
        std::printf("horizon %.0f h, delta=%g, eps=%g (N = %zu paths)\n\n", hours, delta,
                    eps, *criterion.fixed_sample_count());
        std::printf("%-5s %-6s | %-10s %-10s %-9s %-10s | %-10s %-10s %-10s\n", "size",
                    "R", "ctmc-p", "ctmc-time", "states", "ctmc-MiB", "sim-p", "sim-time",
                    "sim-MiB");

        for (int r = 1; r <= max_r; ++r) {
            const eda::Network net =
                eda::build_network_from_source(models::sensor_filter_source(r));
            const sim::TimedReachability prop =
                sim::make_reachability(net.model(), models::sensor_filter_goal(), u);

            const std::size_t rss_before_ctmc = current_rss_bytes();
            const ctmc::FlowResult exact = ctmc::run_ctmc_flow(net, *prop.goal, u);
            const std::size_t rss_after_ctmc = current_rss_bytes();
            const double ctmc_mib = bytes_to_mib(
                rss_after_ctmc > rss_before_ctmc ? rss_after_ctmc - rss_before_ctmc : 0);

            const std::size_t rss_before_sim = current_rss_bytes();
            // ASAP matches the maximal-progress semantics of the CTMC
            // abstraction (untimed model: the only non-determinism is the
            // order of immediate steps).
            const sim::EstimationResult mc =
                sim::estimate(net, prop, sim::StrategyKind::Asap, criterion, 1);
            const std::size_t rss_after_sim = current_rss_bytes();
            const double sim_mib = bytes_to_mib(
                rss_after_sim > rss_before_sim ? rss_after_sim - rss_before_sim : 0);

            std::printf("%-5d %-6d | %-10.5f %-9.2fs %-9zu %-10.1f | %-10.5f %-9.2fs "
                        "%-10.1f\n",
                        2 * r, r, exact.probability, exact.total_seconds,
                        exact.build.states, ctmc_mib, mc.estimate, mc.wall_seconds,
                        sim_mib);
            if (std::abs(exact.probability - mc.estimate) > 2 * eps) {
                std::printf("  !! disagreement beyond 2*eps\n");
            }
            json::Value row = json::Value::object();
            row["r"] = r;
            row["size"] = 2 * r;
            row["ctmc_p"] = exact.probability;
            row["ctmc_seconds"] = exact.total_seconds;
            row["ctmc_states"] = static_cast<std::uint64_t>(exact.build.states);
            row["ctmc_mib"] = ctmc_mib;
            row["sim_p"] = mc.estimate;
            row["sim_seconds"] = mc.wall_seconds;
            row["sim_mib"] = sim_mib;
            report.add_row(std::move(row));
        }
        std::puts("\nexpected shape: ctmc-time/states grow combinatorially with R;"
                  " sim-time stays nearly flat; probabilities agree within eps.");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
