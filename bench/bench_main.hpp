// Shared bench harness: repetition/warmup timing and the BENCH_<name>.json
// machine-readable result file every bench binary emits alongside its
// human-readable table. CI's bench-smoke job parses these files; keeping the
// schema tiny and stable ({bench, params, rows, timings}) lets throughput
// regressions (e.g. the tracing-disabled overhead bound) be tracked across
// commits by diffing JSON instead of scraping stdout.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/json.hpp"

namespace slimsim::benchio {

/// Wall-clock statistics over `reps` timed repetitions of a workload
/// (after `warmup` untimed ones).
struct Timing {
    std::vector<double> seconds; // one entry per timed repetition
    double min_seconds = 0.0;
    double mean_seconds = 0.0;
    double max_seconds = 0.0;

    /// {"reps": N, "min_s": ..., "mean_s": ..., "max_s": ..., "all_s": [...]}
    [[nodiscard]] json::Value to_json() const;
};

/// Runs `fn` warmup + reps times, timing the last `reps` runs. Warmup
/// repetitions absorb first-touch costs (page faults, lazily built tables)
/// so min_seconds approximates steady-state cost.
[[nodiscard]] Timing measure(const std::function<void()>& fn, int reps = 3,
                             int warmup = 1);

/// Times two workloads with their repetitions interleaved (a, b, a, b, ...)
/// so slow drift of the host (thermal, co-tenants) biases both the same
/// way. Use when the *ratio* of the two timings is the reported result,
/// e.g. an instrumentation-overhead bound.
[[nodiscard]] std::pair<Timing, Timing>
measure_interleaved(const std::function<void()>& a, const std::function<void()>& b,
                    int reps = 3, int warmup = 1);

/// Accumulates one bench binary's results and writes BENCH_<name>.json on
/// write() (or from the destructor if never written). The document is
/// {"bench": name, "schema": 1, "params": {...}, "rows": [...]} plus any
/// members the bench sets directly on root(). Output goes to the current
/// directory unless the SLIMSIM_BENCH_DIR environment variable names
/// another one.
class Report {
public:
    explicit Report(std::string name);
    Report(const Report&) = delete;
    Report& operator=(const Report&) = delete;
    ~Report();

    /// The whole document, for benches that want custom sections.
    [[nodiscard]] json::Value& root() { return doc_; }

    /// Sets params[key] = value (run configuration: eps, max-r, ...).
    void param(const std::string& key, json::Value value);

    /// Appends one result row (an object built by the bench).
    void add_row(json::Value row);

    /// Writes BENCH_<name>.json; returns the path written. Idempotent.
    std::string write();

private:
    std::string name_;
    json::Value doc_;
    bool written_ = false;
};

} // namespace slimsim::benchio
