// Strategy comparison on the GPS running example (paper Fig. 2, Sec. III-B).
//
//   $ ./bench_strategies_gps [--eps E]
//
// Shows how each strategy resolves the non-deterministic acquisition window
// [10, 120] s and the transient-recovery window [200, 300] msec: the
// probability of having a fix by a sweep of deadlines differs per strategy
// (ASAP acquires at 10 s, MaxTime at 120 s, Progressive/Local in between).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "models/gps.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        double eps = 0.01;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
                eps = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const eda::Network net = eda::build_network_from_source(models::gps_source());
        const stat::ChernoffHoeffding criterion(0.05, eps);
        benchio::Report report("strategies_gps");
        report.param("eps", eps);
        report.param("paths", static_cast<std::uint64_t>(*criterion.fixed_sample_count()));
        std::printf("== GPS fix-by-deadline per strategy (N = %zu paths) ==\n",
                    *criterion.fixed_sample_count());
        std::printf("%-12s", "deadline");
        for (const auto k : sim::automated_strategies()) {
            std::printf("  %-12s", sim::to_string(k).c_str());
        }
        std::printf("\n");
        for (const double deadline : {5.0, 15.0, 60.0, 119.0, 130.0, 600.0}) {
            std::printf("%-10.0fs ", deadline);
            const sim::TimedReachability prop =
                sim::make_reachability(net.model(), models::gps_goal(), deadline);
            json::Value row = json::Value::object();
            row["deadline_s"] = deadline;
            for (const auto k : sim::automated_strategies()) {
                const auto res = sim::estimate(net, prop, k, criterion, 77);
                std::printf("  %-12.4f", res.estimate);
                row[sim::to_string(k)] = res.estimate;
            }
            report.add_row(std::move(row));
            std::printf("\n");
        }
        std::puts("\nexpected: asap ~1 from deadline >= 10 s; maxtime ~0 before 120 s"
                  " and ~1 after; progressive ramps over [10,120]; local is close to"
                  " progressive (draws below 10 s are pure delays and re-drawn, which"
                  " skews it slightly later).");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
