// Ablation: the sigref-style bisimulation minimization step of the CTMC
// flow (paper Sec. IV describes NuSMV -> sigref -> MRMC; this bench
// quantifies what the reduction buys on the sensor/filter family).
//
//   $ ./bench_bisim [--max-r R] [--hours H]
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_main.hpp"
#include "ctmc/flow.hpp"
#include "models/sensor_filter.hpp"
#include "sim/property.hpp"

int main(int argc, char** argv) {
    using namespace slimsim;
    try {
        int max_r = 4;
        double hours = 100.0;
        for (int i = 1; i < argc; ++i) {
            if (std::strcmp(argv[i], "--max-r") == 0 && i + 1 < argc) {
                max_r = std::stoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--hours") == 0 && i + 1 < argc) {
                hours = std::stod(argv[++i]);
            } else {
                std::fprintf(stderr, "unknown argument %s\n", argv[i]);
                return 2;
            }
        }
        const double u = hours * 3600.0;
        benchio::Report report("bisim");
        report.param("max_r", max_r);
        report.param("hours", hours);
        std::printf("== bisimulation minimization ablation ==\n");
        std::printf("%-3s | %-9s %-9s %-8s | %-12s %-12s | %-10s\n", "R", "ctmc-st",
                    "lumped", "ratio", "t(with)", "t(without)", "|dp|");
        for (int r = 1; r <= max_r; ++r) {
            const eda::Network net =
                eda::build_network_from_source(models::sensor_filter_source(r));
            const sim::TimedReachability prop =
                sim::make_reachability(net.model(), models::sensor_filter_goal(), u);
            ctmc::FlowOptions with;
            ctmc::FlowOptions without;
            without.minimize = false;
            const auto rw = ctmc::run_ctmc_flow(net, *prop.goal, u, with);
            const auto ro = ctmc::run_ctmc_flow(net, *prop.goal, u, without);
            std::printf("%-3d | %-9zu %-9zu %-8.2f | %-11.3fs %-11.3fs | %-10.2e\n", r,
                        rw.ctmc_states, rw.lumped_states,
                        static_cast<double>(rw.ctmc_states) /
                            static_cast<double>(rw.lumped_states == 0 ? 1
                                                                      : rw.lumped_states),
                        rw.total_seconds, ro.total_seconds,
                        rw.probability - ro.probability);
            json::Value row = json::Value::object();
            row["r"] = r;
            row["ctmc_states"] = static_cast<std::uint64_t>(rw.ctmc_states);
            row["lumped_states"] = static_cast<std::uint64_t>(rw.lumped_states);
            row["with_seconds"] = rw.total_seconds;
            row["without_seconds"] = ro.total_seconds;
            row["dp"] = rw.probability - ro.probability;
            report.add_row(std::move(row));
        }
        std::puts("\nexpected: symmetric redundant units lump; the reduction factor"
                  " grows with R; probabilities agree to solver precision.");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
