# Empty dependencies file for redundancy_study.
# This may be replaced when dependencies are built.
