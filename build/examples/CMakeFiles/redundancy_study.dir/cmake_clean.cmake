file(REMOVE_RECURSE
  "CMakeFiles/redundancy_study.dir/redundancy_study.cpp.o"
  "CMakeFiles/redundancy_study.dir/redundancy_study.cpp.o.d"
  "redundancy_study"
  "redundancy_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redundancy_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
