# Empty dependencies file for safety_analysis.
# This may be replaced when dependencies are built.
