file(REMOVE_RECURSE
  "CMakeFiles/safety_analysis.dir/safety_analysis.cpp.o"
  "CMakeFiles/safety_analysis.dir/safety_analysis.cpp.o.d"
  "safety_analysis"
  "safety_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
