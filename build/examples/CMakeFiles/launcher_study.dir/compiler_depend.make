# Empty compiler generated dependencies file for launcher_study.
# This may be replaced when dependencies are built.
