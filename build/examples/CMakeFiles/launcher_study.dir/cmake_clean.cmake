file(REMOVE_RECURSE
  "CMakeFiles/launcher_study.dir/launcher_study.cpp.o"
  "CMakeFiles/launcher_study.dir/launcher_study.cpp.o.d"
  "launcher_study"
  "launcher_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launcher_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
