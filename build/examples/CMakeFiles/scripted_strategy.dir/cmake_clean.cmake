file(REMOVE_RECURSE
  "CMakeFiles/scripted_strategy.dir/scripted_strategy.cpp.o"
  "CMakeFiles/scripted_strategy.dir/scripted_strategy.cpp.o.d"
  "scripted_strategy"
  "scripted_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scripted_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
