# Empty dependencies file for scripted_strategy.
# This may be replaced when dependencies are built.
