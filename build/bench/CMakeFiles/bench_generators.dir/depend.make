# Empty dependencies file for bench_generators.
# This may be replaced when dependencies are built.
