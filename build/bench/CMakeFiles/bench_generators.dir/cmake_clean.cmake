file(REMOVE_RECURSE
  "CMakeFiles/bench_generators.dir/bench_generators.cpp.o"
  "CMakeFiles/bench_generators.dir/bench_generators.cpp.o.d"
  "bench_generators"
  "bench_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
