# Empty dependencies file for bench_memory_policy.
# This may be replaced when dependencies are built.
