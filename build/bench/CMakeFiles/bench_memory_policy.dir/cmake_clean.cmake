file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_policy.dir/bench_memory_policy.cpp.o"
  "CMakeFiles/bench_memory_policy.dir/bench_memory_policy.cpp.o.d"
  "bench_memory_policy"
  "bench_memory_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
