# Empty compiler generated dependencies file for bench_rare.
# This may be replaced when dependencies are built.
