file(REMOVE_RECURSE
  "CMakeFiles/bench_rare.dir/bench_rare.cpp.o"
  "CMakeFiles/bench_rare.dir/bench_rare.cpp.o.d"
  "bench_rare"
  "bench_rare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
