file(REMOVE_RECURSE
  "CMakeFiles/bench_strategies_gps.dir/bench_strategies_gps.cpp.o"
  "CMakeFiles/bench_strategies_gps.dir/bench_strategies_gps.cpp.o.d"
  "bench_strategies_gps"
  "bench_strategies_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategies_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
