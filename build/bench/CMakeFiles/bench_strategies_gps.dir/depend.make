# Empty dependencies file for bench_strategies_gps.
# This may be replaced when dependencies are built.
