file(REMOVE_RECURSE
  "CMakeFiles/test_eda_edge.dir/test_eda_edge.cpp.o"
  "CMakeFiles/test_eda_edge.dir/test_eda_edge.cpp.o.d"
  "test_eda_edge"
  "test_eda_edge.pdb"
  "test_eda_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eda_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
