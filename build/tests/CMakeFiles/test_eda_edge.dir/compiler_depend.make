# Empty compiler generated dependencies file for test_eda_edge.
# This may be replaced when dependencies are built.
