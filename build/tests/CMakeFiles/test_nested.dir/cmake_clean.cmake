file(REMOVE_RECURSE
  "CMakeFiles/test_nested.dir/test_nested.cpp.o"
  "CMakeFiles/test_nested.dir/test_nested.cpp.o.d"
  "test_nested"
  "test_nested.pdb"
  "test_nested[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
