# Empty compiler generated dependencies file for test_bisim.
# This may be replaced when dependencies are built.
