file(REMOVE_RECURSE
  "CMakeFiles/test_bisim.dir/test_bisim.cpp.o"
  "CMakeFiles/test_bisim.dir/test_bisim.cpp.o.d"
  "test_bisim"
  "test_bisim.pdb"
  "test_bisim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
