# Empty compiler generated dependencies file for test_splitting.
# This may be replaced when dependencies are built.
