file(REMOVE_RECURSE
  "CMakeFiles/test_splitting.dir/test_splitting.cpp.o"
  "CMakeFiles/test_splitting.dir/test_splitting.cpp.o.d"
  "test_splitting"
  "test_splitting.pdb"
  "test_splitting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
