file(REMOVE_RECURSE
  "CMakeFiles/test_fault_tree.dir/test_fault_tree.cpp.o"
  "CMakeFiles/test_fault_tree.dir/test_fault_tree.cpp.o.d"
  "test_fault_tree"
  "test_fault_tree.pdb"
  "test_fault_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
