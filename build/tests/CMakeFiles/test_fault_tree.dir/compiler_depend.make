# Empty compiler generated dependencies file for test_fault_tree.
# This may be replaced when dependencies are built.
