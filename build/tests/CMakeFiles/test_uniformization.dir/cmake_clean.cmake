file(REMOVE_RECURSE
  "CMakeFiles/test_uniformization.dir/test_uniformization.cpp.o"
  "CMakeFiles/test_uniformization.dir/test_uniformization.cpp.o.d"
  "test_uniformization"
  "test_uniformization.pdb"
  "test_uniformization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uniformization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
