# Empty dependencies file for test_uniformization.
# This may be replaced when dependencies are built.
