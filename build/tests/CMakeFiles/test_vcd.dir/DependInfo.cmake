
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_vcd.cpp" "tests/CMakeFiles/test_vcd.dir/test_vcd.cpp.o" "gcc" "tests/CMakeFiles/test_vcd.dir/test_vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_props.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_rare.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_safety.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_eda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_slim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
