file(REMOVE_RECURSE
  "CMakeFiles/test_stat.dir/test_stat.cpp.o"
  "CMakeFiles/test_stat.dir/test_stat.cpp.o.d"
  "test_stat"
  "test_stat.pdb"
  "test_stat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
