file(REMOVE_RECURSE
  "CMakeFiles/test_expr_roundtrip.dir/test_expr_roundtrip.cpp.o"
  "CMakeFiles/test_expr_roundtrip.dir/test_expr_roundtrip.cpp.o.d"
  "test_expr_roundtrip"
  "test_expr_roundtrip.pdb"
  "test_expr_roundtrip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
