# Empty compiler generated dependencies file for test_expr_roundtrip.
# This may be replaced when dependencies are built.
