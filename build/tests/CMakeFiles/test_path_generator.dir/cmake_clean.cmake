file(REMOVE_RECURSE
  "CMakeFiles/test_path_generator.dir/test_path_generator.cpp.o"
  "CMakeFiles/test_path_generator.dir/test_path_generator.cpp.o.d"
  "test_path_generator"
  "test_path_generator.pdb"
  "test_path_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
