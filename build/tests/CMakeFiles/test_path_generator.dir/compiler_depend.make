# Empty compiler generated dependencies file for test_path_generator.
# This may be replaced when dependencies are built.
