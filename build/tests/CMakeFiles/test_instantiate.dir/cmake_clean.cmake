file(REMOVE_RECURSE
  "CMakeFiles/test_instantiate.dir/test_instantiate.cpp.o"
  "CMakeFiles/test_instantiate.dir/test_instantiate.cpp.o.d"
  "test_instantiate"
  "test_instantiate.pdb"
  "test_instantiate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instantiate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
