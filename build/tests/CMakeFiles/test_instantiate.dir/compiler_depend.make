# Empty compiler generated dependencies file for test_instantiate.
# This may be replaced when dependencies are built.
