file(REMOVE_RECURSE
  "CMakeFiles/slimsim_safety.dir/safety/fault_tree.cpp.o"
  "CMakeFiles/slimsim_safety.dir/safety/fault_tree.cpp.o.d"
  "CMakeFiles/slimsim_safety.dir/safety/fdir.cpp.o"
  "CMakeFiles/slimsim_safety.dir/safety/fdir.cpp.o.d"
  "CMakeFiles/slimsim_safety.dir/safety/fmea.cpp.o"
  "CMakeFiles/slimsim_safety.dir/safety/fmea.cpp.o.d"
  "libslimsim_safety.a"
  "libslimsim_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
