# Empty dependencies file for slimsim_safety.
# This may be replaced when dependencies are built.
