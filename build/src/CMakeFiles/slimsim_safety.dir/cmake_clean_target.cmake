file(REMOVE_RECURSE
  "libslimsim_safety.a"
)
