file(REMOVE_RECURSE
  "libslimsim_props.a"
)
