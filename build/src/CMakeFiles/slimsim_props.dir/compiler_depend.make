# Empty compiler generated dependencies file for slimsim_props.
# This may be replaced when dependencies are built.
