file(REMOVE_RECURSE
  "CMakeFiles/slimsim_props.dir/props/pattern.cpp.o"
  "CMakeFiles/slimsim_props.dir/props/pattern.cpp.o.d"
  "libslimsim_props.a"
  "libslimsim_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
