file(REMOVE_RECURSE
  "libslimsim_sim.a"
)
