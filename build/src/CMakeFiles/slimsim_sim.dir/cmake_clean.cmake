file(REMOVE_RECURSE
  "CMakeFiles/slimsim_sim.dir/sim/hypothesis.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/hypothesis.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/nested.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/nested.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/parallel_runner.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/parallel_runner.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/path_generator.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/path_generator.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/property.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/property.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/runner.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/runner.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/strategy.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/strategy.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/trace.cpp.o.d"
  "CMakeFiles/slimsim_sim.dir/sim/vcd.cpp.o"
  "CMakeFiles/slimsim_sim.dir/sim/vcd.cpp.o.d"
  "libslimsim_sim.a"
  "libslimsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
