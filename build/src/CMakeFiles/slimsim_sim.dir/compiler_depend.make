# Empty compiler generated dependencies file for slimsim_sim.
# This may be replaced when dependencies are built.
