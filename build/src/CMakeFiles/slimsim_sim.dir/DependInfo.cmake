
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/hypothesis.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/hypothesis.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/hypothesis.cpp.o.d"
  "/root/repo/src/sim/nested.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/nested.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/nested.cpp.o.d"
  "/root/repo/src/sim/parallel_runner.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/parallel_runner.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/parallel_runner.cpp.o.d"
  "/root/repo/src/sim/path_generator.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/path_generator.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/path_generator.cpp.o.d"
  "/root/repo/src/sim/property.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/property.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/property.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/runner.cpp.o.d"
  "/root/repo/src/sim/strategy.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/strategy.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/strategy.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/slimsim_sim.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/slimsim_sim.dir/sim/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_eda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_stat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_slim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
