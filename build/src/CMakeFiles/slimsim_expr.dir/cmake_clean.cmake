file(REMOVE_RECURSE
  "CMakeFiles/slimsim_expr.dir/expr/ast.cpp.o"
  "CMakeFiles/slimsim_expr.dir/expr/ast.cpp.o.d"
  "CMakeFiles/slimsim_expr.dir/expr/eval.cpp.o"
  "CMakeFiles/slimsim_expr.dir/expr/eval.cpp.o.d"
  "CMakeFiles/slimsim_expr.dir/expr/timeline.cpp.o"
  "CMakeFiles/slimsim_expr.dir/expr/timeline.cpp.o.d"
  "CMakeFiles/slimsim_expr.dir/expr/type.cpp.o"
  "CMakeFiles/slimsim_expr.dir/expr/type.cpp.o.d"
  "CMakeFiles/slimsim_expr.dir/expr/value.cpp.o"
  "CMakeFiles/slimsim_expr.dir/expr/value.cpp.o.d"
  "libslimsim_expr.a"
  "libslimsim_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
