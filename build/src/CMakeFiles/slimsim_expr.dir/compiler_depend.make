# Empty compiler generated dependencies file for slimsim_expr.
# This may be replaced when dependencies are built.
