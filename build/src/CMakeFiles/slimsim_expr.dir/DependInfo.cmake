
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/ast.cpp" "src/CMakeFiles/slimsim_expr.dir/expr/ast.cpp.o" "gcc" "src/CMakeFiles/slimsim_expr.dir/expr/ast.cpp.o.d"
  "/root/repo/src/expr/eval.cpp" "src/CMakeFiles/slimsim_expr.dir/expr/eval.cpp.o" "gcc" "src/CMakeFiles/slimsim_expr.dir/expr/eval.cpp.o.d"
  "/root/repo/src/expr/timeline.cpp" "src/CMakeFiles/slimsim_expr.dir/expr/timeline.cpp.o" "gcc" "src/CMakeFiles/slimsim_expr.dir/expr/timeline.cpp.o.d"
  "/root/repo/src/expr/type.cpp" "src/CMakeFiles/slimsim_expr.dir/expr/type.cpp.o" "gcc" "src/CMakeFiles/slimsim_expr.dir/expr/type.cpp.o.d"
  "/root/repo/src/expr/value.cpp" "src/CMakeFiles/slimsim_expr.dir/expr/value.cpp.o" "gcc" "src/CMakeFiles/slimsim_expr.dir/expr/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
