file(REMOVE_RECURSE
  "libslimsim_expr.a"
)
