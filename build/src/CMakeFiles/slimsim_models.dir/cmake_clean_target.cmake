file(REMOVE_RECURSE
  "libslimsim_models.a"
)
