# Empty compiler generated dependencies file for slimsim_models.
# This may be replaced when dependencies are built.
