file(REMOVE_RECURSE
  "CMakeFiles/slimsim_models.dir/models/failover.cpp.o"
  "CMakeFiles/slimsim_models.dir/models/failover.cpp.o.d"
  "CMakeFiles/slimsim_models.dir/models/gps.cpp.o"
  "CMakeFiles/slimsim_models.dir/models/gps.cpp.o.d"
  "CMakeFiles/slimsim_models.dir/models/launcher.cpp.o"
  "CMakeFiles/slimsim_models.dir/models/launcher.cpp.o.d"
  "CMakeFiles/slimsim_models.dir/models/sensor_filter.cpp.o"
  "CMakeFiles/slimsim_models.dir/models/sensor_filter.cpp.o.d"
  "libslimsim_models.a"
  "libslimsim_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
