# Empty compiler generated dependencies file for slimsim_stat.
# This may be replaced when dependencies are built.
