file(REMOVE_RECURSE
  "CMakeFiles/slimsim_stat.dir/stat/bernoulli.cpp.o"
  "CMakeFiles/slimsim_stat.dir/stat/bernoulli.cpp.o.d"
  "CMakeFiles/slimsim_stat.dir/stat/collector.cpp.o"
  "CMakeFiles/slimsim_stat.dir/stat/collector.cpp.o.d"
  "CMakeFiles/slimsim_stat.dir/stat/generators.cpp.o"
  "CMakeFiles/slimsim_stat.dir/stat/generators.cpp.o.d"
  "libslimsim_stat.a"
  "libslimsim_stat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_stat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
