file(REMOVE_RECURSE
  "libslimsim_stat.a"
)
