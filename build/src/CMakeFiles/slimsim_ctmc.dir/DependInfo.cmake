
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmc/bisim.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/bisim.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/bisim.cpp.o.d"
  "/root/repo/src/ctmc/ctmc.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/ctmc.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/ctmc.cpp.o.d"
  "/root/repo/src/ctmc/flow.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/flow.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/flow.cpp.o.d"
  "/root/repo/src/ctmc/imc.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/imc.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/imc.cpp.o.d"
  "/root/repo/src/ctmc/state_space.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/state_space.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/state_space.cpp.o.d"
  "/root/repo/src/ctmc/uniformization.cpp" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/uniformization.cpp.o" "gcc" "src/CMakeFiles/slimsim_ctmc.dir/ctmc/uniformization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_eda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_slim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
