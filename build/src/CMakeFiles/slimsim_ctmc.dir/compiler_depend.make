# Empty compiler generated dependencies file for slimsim_ctmc.
# This may be replaced when dependencies are built.
