file(REMOVE_RECURSE
  "libslimsim_ctmc.a"
)
