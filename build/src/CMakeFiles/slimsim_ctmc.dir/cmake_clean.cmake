file(REMOVE_RECURSE
  "CMakeFiles/slimsim_ctmc.dir/ctmc/bisim.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/bisim.cpp.o.d"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/ctmc.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/ctmc.cpp.o.d"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/flow.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/flow.cpp.o.d"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/imc.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/imc.cpp.o.d"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/state_space.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/state_space.cpp.o.d"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/uniformization.cpp.o"
  "CMakeFiles/slimsim_ctmc.dir/ctmc/uniformization.cpp.o.d"
  "libslimsim_ctmc.a"
  "libslimsim_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
