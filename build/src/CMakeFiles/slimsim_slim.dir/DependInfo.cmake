
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slim/ast.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/ast.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/ast.cpp.o.d"
  "/root/repo/src/slim/extension.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/extension.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/extension.cpp.o.d"
  "/root/repo/src/slim/instantiate.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/instantiate.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/instantiate.cpp.o.d"
  "/root/repo/src/slim/lexer.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/lexer.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/lexer.cpp.o.d"
  "/root/repo/src/slim/parser.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/parser.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/parser.cpp.o.d"
  "/root/repo/src/slim/printer.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/printer.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/printer.cpp.o.d"
  "/root/repo/src/slim/resolver.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/resolver.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/resolver.cpp.o.d"
  "/root/repo/src/slim/summary.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/summary.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/summary.cpp.o.d"
  "/root/repo/src/slim/token.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/token.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/token.cpp.o.d"
  "/root/repo/src/slim/validate.cpp" "src/CMakeFiles/slimsim_slim.dir/slim/validate.cpp.o" "gcc" "src/CMakeFiles/slimsim_slim.dir/slim/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
