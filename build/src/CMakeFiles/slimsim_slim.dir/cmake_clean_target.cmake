file(REMOVE_RECURSE
  "libslimsim_slim.a"
)
