file(REMOVE_RECURSE
  "CMakeFiles/slimsim_slim.dir/slim/ast.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/ast.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/extension.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/extension.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/instantiate.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/instantiate.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/lexer.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/lexer.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/parser.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/parser.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/printer.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/printer.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/resolver.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/resolver.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/summary.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/summary.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/token.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/token.cpp.o.d"
  "CMakeFiles/slimsim_slim.dir/slim/validate.cpp.o"
  "CMakeFiles/slimsim_slim.dir/slim/validate.cpp.o.d"
  "libslimsim_slim.a"
  "libslimsim_slim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_slim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
