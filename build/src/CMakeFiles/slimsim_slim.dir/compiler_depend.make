# Empty compiler generated dependencies file for slimsim_slim.
# This may be replaced when dependencies are built.
