# Empty compiler generated dependencies file for slimsim_cli.
# This may be replaced when dependencies are built.
