file(REMOVE_RECURSE
  "CMakeFiles/slimsim_cli.dir/cli/main.cpp.o"
  "CMakeFiles/slimsim_cli.dir/cli/main.cpp.o.d"
  "slimsim"
  "slimsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
