# Empty dependencies file for slimsim_rare.
# This may be replaced when dependencies are built.
