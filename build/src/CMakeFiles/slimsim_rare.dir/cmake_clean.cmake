file(REMOVE_RECURSE
  "CMakeFiles/slimsim_rare.dir/rare/splitting.cpp.o"
  "CMakeFiles/slimsim_rare.dir/rare/splitting.cpp.o.d"
  "libslimsim_rare.a"
  "libslimsim_rare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_rare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
