file(REMOVE_RECURSE
  "libslimsim_rare.a"
)
