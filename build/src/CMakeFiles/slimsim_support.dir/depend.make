# Empty dependencies file for slimsim_support.
# This may be replaced when dependencies are built.
