file(REMOVE_RECURSE
  "libslimsim_support.a"
)
