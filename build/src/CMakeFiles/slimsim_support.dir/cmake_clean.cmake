file(REMOVE_RECURSE
  "CMakeFiles/slimsim_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/slimsim_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/slimsim_support.dir/support/intervals.cpp.o"
  "CMakeFiles/slimsim_support.dir/support/intervals.cpp.o.d"
  "CMakeFiles/slimsim_support.dir/support/memprobe.cpp.o"
  "CMakeFiles/slimsim_support.dir/support/memprobe.cpp.o.d"
  "CMakeFiles/slimsim_support.dir/support/rng.cpp.o"
  "CMakeFiles/slimsim_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/slimsim_support.dir/support/thread_pool.cpp.o"
  "CMakeFiles/slimsim_support.dir/support/thread_pool.cpp.o.d"
  "libslimsim_support.a"
  "libslimsim_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
