file(REMOVE_RECURSE
  "libslimsim_eda.a"
)
