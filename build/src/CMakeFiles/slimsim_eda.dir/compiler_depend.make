# Empty compiler generated dependencies file for slimsim_eda.
# This may be replaced when dependencies are built.
