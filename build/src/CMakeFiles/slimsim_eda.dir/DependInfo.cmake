
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eda/network.cpp" "src/CMakeFiles/slimsim_eda.dir/eda/network.cpp.o" "gcc" "src/CMakeFiles/slimsim_eda.dir/eda/network.cpp.o.d"
  "/root/repo/src/eda/state.cpp" "src/CMakeFiles/slimsim_eda.dir/eda/state.cpp.o" "gcc" "src/CMakeFiles/slimsim_eda.dir/eda/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slimsim_slim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slimsim_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
