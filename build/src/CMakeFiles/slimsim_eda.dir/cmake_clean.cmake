file(REMOVE_RECURSE
  "CMakeFiles/slimsim_eda.dir/eda/network.cpp.o"
  "CMakeFiles/slimsim_eda.dir/eda/network.cpp.o.d"
  "CMakeFiles/slimsim_eda.dir/eda/state.cpp.o"
  "CMakeFiles/slimsim_eda.dir/eda/state.cpp.o.d"
  "libslimsim_eda.a"
  "libslimsim_eda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimsim_eda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
